package dram

import (
	"slices"
	"testing"

	"reaper/internal/patterns"
	"reaper/internal/rng"
)

// driveThreeWay extends driveSparseVsDense to the banked execution modes: a
// dense per-cell oracle, a sequential sparse device, and a sharded device at
// the given worker count — all three in BankStreams mode with identical
// config and seed — run through one randomized operation script. Every
// read-compare must agree bit-for-bit, and at the end per-cell stuck state,
// operation counters, banked-sweep counters, and the positions of the device
// stream AND every per-bank stream must be identical across all three.
func driveThreeWay(t *testing.T, cfg Config, opSeed uint64, passes, workers int) {
	t.Helper()
	cfg.BankStreams = true
	dense, err := NewDevice(cfg)
	if err != nil {
		t.Fatal(err)
	}
	seq, err := NewDevice(cfg)
	if err != nil {
		t.Fatal(err)
	}
	banked, err := NewDevice(cfg)
	if err != nil {
		t.Fatal(err)
	}
	banked.SetSweepWorkers(workers)
	if workers > 1 && !banked.shardedMode() {
		t.Fatal("banked device did not enter sharded mode")
	}
	if dense.WeakCellCount() == 0 {
		t.Fatal("degenerate test: no weak cells sampled")
	}
	devs := []*Device{dense, seq, banked}

	ops := rng.New(opSeed)
	pats := []RowData{
		patterns.Solid1(),
		patterns.Checkerboard(),
		patterns.Random(opSeed),
		patterns.Invert(patterns.Random(opSeed + 1)),
	}
	waits := []float64{0.01, 0.128, 0.7, 2.048, 5.5}
	refs := []float64{0, 0.064, 0.3}

	now := 0.0
	for _, d := range devs {
		d.WriteAll(pats[0], now)
	}

	for p := 0; p < passes; p++ {
		switch ops.Intn(9) {
		case 0: // ambient temperature move
			temp := RefTempC + float64(ops.Intn(31)) - 5
			for _, d := range devs {
				d.SetTemperature(temp)
			}
		case 1: // auto-refresh reconfiguration
			ar := refs[ops.Intn(len(refs))]
			for _, d := range devs {
				d.SetAutoRefresh(ar)
			}
		case 2: // full-row rewrite
			bank := ops.Intn(cfg.Geometry.Banks)
			row := ops.Intn(cfg.Geometry.RowsPerBank)
			words := make([]uint64, cfg.Geometry.WordsPerRow)
			fill := ops.Uint64()
			for i := range words {
				words[i] = fill
			}
			for _, d := range devs {
				if err := d.WriteRow(bank, row, words, now); err != nil {
					t.Fatal(err)
				}
			}
		case 3: // single-word write
			bank := ops.Intn(cfg.Geometry.Banks)
			row := ops.Intn(cfg.Geometry.RowsPerBank)
			word := ops.Intn(cfg.Geometry.WordsPerRow)
			val := ops.Uint64()
			for _, d := range devs {
				if err := d.WriteWord(bank, row, word, val, now); err != nil {
					t.Fatal(err)
				}
			}
		case 4: // row readback must agree too
			bank := ops.Intn(cfg.Geometry.Banks)
			row := ops.Intn(cfg.Geometry.RowsPerBank)
			dw, err := dense.ReadRow(bank, row, now)
			if err != nil {
				t.Fatal(err)
			}
			for _, d := range devs[1:] {
				w, err := d.ReadRow(bank, row, now)
				if err != nil {
					t.Fatal(err)
				}
				if !slices.Equal(dw, w) {
					t.Fatalf("pass %d: ReadRow(%d,%d) diverged", p, bank, row)
				}
			}
		case 5: // snapshot + immediate restore (stuck overlay rebuild)
			for _, d := range devs {
				if err := d.RestoreContent(d.SnapshotContent(), now); err != nil {
					t.Fatal(err)
				}
			}
		case 6: // bulk pattern rewrite
			pat := pats[ops.Intn(len(pats))]
			for _, d := range devs {
				d.WriteAll(pat, now)
			}
		case 7: // refresh sweep without collection
			denseReadCompareAll(dense, now)
			seq.RestoreAll(now)
			banked.RestoreAll(now)
		case 8: // fault injection: new cells, VRT forcing, DPD reshuffle
			injSeed := ops.Uint64()
			var prev []uint64
			for i, d := range devs {
				src := rng.New(injSeed)
				bits := d.InjectWeakCells(src, 2, 0, now)
				if i > 0 && !slices.Equal(bits, prev) {
					t.Fatalf("pass %d: injection diverged", p)
				}
				prev = bits
				d.ForceVRTLowBurst(src, 1, 0, now)
				d.RescrambleDPD(src, 3)
			}
		}

		now += waits[ops.Intn(len(waits))]
		df := denseReadCompareAll(dense, now)
		sf := seq.ReadCompareAll(now)
		bf := banked.ReadCompareAll(now)
		if !slices.Equal(df, sf) {
			t.Fatalf("pass %d (now=%.3f): dense fails %d, sequential fails %d\ndense: %v\nseq:   %v",
				p, now, len(df), len(sf), df, sf)
		}
		if !slices.Equal(df, bf) {
			t.Fatalf("pass %d (now=%.3f): dense fails %d, banked fails %d\ndense:  %v\nbanked: %v",
				p, now, len(df), len(bf), df, bf)
		}
	}

	for i := range dense.weak {
		if dense.weak[i].stuck != seq.weak[i].stuck || dense.weak[i].stuck != banked.weak[i].stuck {
			t.Fatalf("cell %d (bit %d): stuck dense=%d seq=%d banked=%d", i, dense.weak[i].bit,
				dense.weak[i].stuck, seq.weak[i].stuck, banked.weak[i].stuck)
		}
	}
	dr, dfl := dense.Stats()
	for _, d := range devs[1:] {
		r, fl := d.Stats()
		if r != dr || fl != dfl {
			t.Fatalf("stats diverged: dense (%d reads, %d flips) vs (%d reads, %d flips)", dr, dfl, r, fl)
		}
	}
	// The sparse-path disposition counters and the logical banked-sweep
	// counters must not depend on the worker count.
	if seq.IndexStats() != banked.IndexStats() {
		t.Fatalf("index stats diverged: seq %+v vs banked %+v", seq.IndexStats(), banked.IndexStats())
	}
	if seq.BankStats() != banked.BankStats() {
		t.Fatalf("bank stats diverged: seq %+v vs banked %+v", seq.BankStats(), banked.BankStats())
	}
	if banked.BankStats().BankedSweeps == 0 {
		t.Fatal("no banked sweeps recorded")
	}
	// Strongest check: identical positions on the device stream and on every
	// per-bank sampling stream, so the next raw draws all agree.
	if s, b := seq.src.Uint64(), banked.src.Uint64(); s != b || s != dense.src.Uint64() {
		t.Fatalf("device seed streams diverged: next draw %#x vs %#x", s, b)
	}
	for b := range banked.bankSrcs {
		dv, sv, bv := dense.bankSrcs[b].Uint64(), seq.bankSrcs[b].Uint64(), banked.bankSrcs[b].Uint64()
		if dv != sv || dv != bv {
			t.Fatalf("bank %d streams diverged: dense %#x seq %#x banked %#x", b, dv, sv, bv)
		}
	}
}

// TestBankedMatchesDenseAndSequential is the core property test of banked
// intra-chip parallelism: sharded execution must be byte-identical to the
// sequential banked sweep — and both to the dense per-cell oracle — at
// workers 1 and 4, across seeds and the full operation mix.
func TestBankedMatchesDenseAndSequential(t *testing.T) {
	for _, workers := range []int{1, 4} {
		for seed := uint64(1); seed <= 4; seed++ {
			cfg := sparseTestConfig(seed)
			driveThreeWay(t, cfg, seed*1511, 30, workers)
		}
	}
}

// TestBankedVRTHeavy stresses per-bank stream routing on the VRT slow path,
// where cells carry private switch streams alongside the bank streams.
func TestBankedVRTHeavy(t *testing.T) {
	cfg := sparseTestConfig(2)
	cfg.Vendor.VRTFraction = 0.5
	cfg.Vendor.VRTDwellLowHours = 0.5
	cfg.Vendor.VRTDwellHighHours = 0.5
	driveThreeWay(t, cfg, 6011, 30, 4)
}

// TestBankedManyWorkersClamp checks worker counts far beyond the bank count
// change nothing: shards are per-bank, surplus workers idle.
func TestBankedManyWorkersClamp(t *testing.T) {
	cfg := sparseTestConfig(3)
	driveThreeWay(t, cfg, 7717, 20, 64)
}

// TestBankStreamsChangeResults pins that BankStreams mode is a distinct
// sampling universe: with per-bank streams the draws come from different
// sequences than the single-stream device, so at least one sweep outcome
// should differ across a varied script. (Guards against silently wiring
// every bank back to the device stream.)
func TestBankStreamsChangeResults(t *testing.T) {
	cfg := sparseTestConfig(5)
	single, err := NewDevice(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.BankStreams = true
	bankedDev, err := NewDevice(cfg)
	if err != nil {
		t.Fatal(err)
	}
	pats := []RowData{patterns.Solid1(), patterns.Checkerboard(), patterns.Random(99)}
	now := 0.0
	differ := false
	for p := 0; p < 40 && !differ; p++ {
		pat := pats[p%len(pats)]
		single.WriteAll(pat, now)
		bankedDev.WriteAll(pat, now)
		now += 2.048
		differ = !slices.Equal(single.ReadCompareAll(now), bankedDev.ReadCompareAll(now))
	}
	if !differ {
		t.Fatal("BankStreams mode never diverged from single-stream mode — bank streams are not in use")
	}
}
