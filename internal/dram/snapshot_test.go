package dram

import (
	"testing"

	"reaper/internal/patterns"
)

func TestSnapshotRoundTripPreservesContent(t *testing.T) {
	d := testDevice(t, 40, nil)
	d.WriteAll(patterns.Checkerboard(), 0)
	words := make([]uint64, d.Geometry().WordsPerRow)
	for i := range words {
		words[i] = uint64(i) * 0x1111111111111111
	}
	if err := d.WriteRow(2, 7, words, 1); err != nil {
		t.Fatal(err)
	}
	if err := d.WriteWord(3, 9, 4, 0xabcdef, 2); err != nil {
		t.Fatal(err)
	}

	snap := d.SnapshotContent()

	// Trash the device.
	d.WriteAll(patterns.Solid1(), 10)

	if err := d.RestoreContent(snap, 20); err != nil {
		t.Fatal(err)
	}
	got, err := d.ReadRow(2, 7, 20.001)
	if err != nil {
		t.Fatal(err)
	}
	for i := range words {
		if got[i] != words[i] {
			t.Fatalf("restored row word %d = %x, want %x", i, got[i], words[i])
		}
	}
	v, err := d.ReadWord(3, 9, 4, 20.002)
	if err != nil {
		t.Fatal(err)
	}
	if v != 0xabcdef {
		t.Fatalf("restored word = %x", v)
	}
	// Bulk content restored too.
	other, err := d.ReadRow(0, 0, 20.003)
	if err != nil {
		t.Fatal(err)
	}
	if other[0] != patterns.Checkerboard().Word(0, 0) {
		t.Errorf("bulk content not restored: %x", other[0])
	}
}

func TestSnapshotPreservesCorruption(t *testing.T) {
	// Saving cannot heal: a cell that decayed before the save keeps its
	// wrong value after restore.
	d := testDevice(t, 41, nil)
	d.WriteAll(patterns.Solid1(), 0)
	fails := d.ReadCompareAll(4.096) // decays and locks in failures
	if len(fails) == 0 {
		t.Fatal("no failures to test with")
	}
	snap := d.SnapshotContent()
	d.WriteAll(patterns.Solid0(), 5) // trash
	if err := d.RestoreContent(snap, 6); err != nil {
		t.Fatal(err)
	}
	// Right after restore, the previously failed bits still read wrong.
	after := d.ReadCompareAll(6.001)
	stillWrong := make(map[uint64]bool, len(after))
	for _, b := range after {
		stillWrong[b] = true
	}
	for _, b := range fails {
		if !stillWrong[b] {
			t.Fatalf("bit %d healed through save/restore", b)
		}
	}
}

func TestSnapshotChargeIsFreshAfterRestore(t *testing.T) {
	// The restore is a full write: a long time between snapshot and
	// restore must not count as retention time.
	d := testDevice(t, 42, nil)
	d.WriteAll(patterns.Random(1), 0)
	snap := d.SnapshotContent()
	// Restore a simulated hour later; an immediate read sees no *new*
	// failures (elapsed is measured from the restore).
	if err := d.RestoreContent(snap, 3600); err != nil {
		t.Fatal(err)
	}
	if fails := d.ReadCompareAll(3600.01); len(fails) != 0 {
		t.Errorf("%d failures right after restore, want 0", len(fails))
	}
}

func TestRestoreContentValidation(t *testing.T) {
	d := testDevice(t, 43, nil)
	if err := d.RestoreContent(nil, 0); err == nil {
		t.Error("nil snapshot not rejected")
	}
	other := testDevice(t, 44, func(c *Config) { c.WeakScale = 5 })
	snap := other.SnapshotContent()
	if err := d.RestoreContent(snap, 0); err == nil {
		t.Error("foreign snapshot not rejected")
	}
}
