package dram

import (
	"math"

	"reaper/internal/rng"
	"reaper/internal/stats"
)

func pow(x, y float64) float64 { return math.Pow(x, y) }
func exp(x float64) float64    { return math.Exp(x) }

// weakCell is one cell from the weak tail of the retention distribution: a
// cell whose retention mean lies inside the modelled interval domain and
// which can therefore produce retention failures during experiments.
type weakCell struct {
	// bit is the cell's global linear bit index.
	bit uint64

	// mu is the cell's base retention mean in seconds at the reference
	// temperature, before DPD and VRT adjustments.
	mu float64

	// sigma is the standard deviation (seconds, at reference temperature)
	// of the cell's normal failure CDF (Section 5.5).
	sigma float64

	// chargedVal is the logical value (0 or 1) stored as charge in this
	// cell. Retention loss can only corrupt a cell storing its charged
	// value ("true-cells" lose 1s, "anti-cells" lose 0s), which is why the
	// paper tests patterns together with their inverses.
	chargedVal uint8

	// dpdSens in [0,1) scales how strongly the stored neighbourhood data
	// shifts this cell's retention; dpdSeed makes the per-neighbourhood
	// shift a stable function of the data.
	dpdSens float64
	dpdSeed uint64

	// stuck holds the value the cell currently reads as if a past failure
	// was restored into it by a read/refresh (the paper's Figure 1c
	// scenario); -1 when the cell holds its written data.
	stuck int8

	// inStuckList records membership in Device.stuckList, the overlay a
	// sparse sweep visits instead of scanning the population for stuck
	// cells. stuck >= 0 implies inStuckList; the converse can be stale
	// after a partial-write clear until the next collecting sweep compacts
	// the list.
	inStuckList bool

	// dpdTracked / vrtTracked record membership in the device's delta-codec
	// divergence journals (Device.dpdReseeded / Device.vrtForced), so a cell
	// hit by repeated injection events is journaled exactly once. A forced
	// VRT cell stays journaled forever: its whole future switch schedule
	// descends from the forced baseline, not the construction draw.
	dpdTracked bool
	vrtTracked bool

	// nbrCode caches the cell's neighbourhood code for the write epoch
	// nbrEpoch; valid only while nbrEpoch == Device.contentEpoch.
	nbrCode  uint64 //lint:serialized-elsewhere per-epoch memo; recomputed on the first sample after restore
	nbrEpoch uint64 //lint:serialized-elsewhere per-epoch memo; stale by construction until it matches the restored contentEpoch

	// vrt is non-nil for cells with variable retention time.
	vrt *vrtState
}

// vrtState models the memoryless two-state VRT process (Section 2.3.1): the
// cell alternates between a low-retention state (mean muLow) and a
// high-retention state (muHigh), with exponentially distributed dwell times.
type vrtState struct {
	muLow, muHigh float64
	dwellLow      float64 // mean dwell in low state, seconds
	dwellHigh     float64 // mean dwell in high state, seconds
	inLow         bool
	nextSwitch    float64 // simulated time (seconds) of the next transition
	src           *rng.Source
}

// advance rolls the VRT process forward to simulated time now.
func (v *vrtState) advance(now float64) {
	for v.nextSwitch <= now {
		v.inLow = !v.inLow
		mean := v.dwellHigh
		if v.inLow {
			mean = v.dwellLow
		}
		v.nextSwitch += v.src.Exp(mean)
	}
}

// muAt returns the cell's retention mean (seconds) at simulated time now,
// accounting for the VRT state.
func (c *weakCell) muAt(now float64) float64 {
	if c.vrt == nil {
		return c.mu
	}
	c.vrt.advance(now)
	if c.vrt.inLow {
		return c.vrt.muLow
	}
	return c.vrt.muHigh
}

// dpdFactor returns the multiplicative retention shift induced by the
// neighbourhood data code (a small integer encoding the stored values of the
// cell's neighbours). The cell's base retention mean is its *worst-case*
// (most leakage-coupled) retention; any other neighbourhood data lengthens
// it by a stable pseudo-random factor in [1, 1+2*dpdSens]. A given pattern
// therefore always exposes the same subset of cells while different patterns
// expose different ones, and no pattern can push a cell below its calibrated
// worst-case retention (which keeps default-interval operation lossless).
func (c *weakCell) dpdFactor(code uint64) float64 {
	if c.dpdSens == 0 {
		return 1
	}
	h := mix64(c.dpdSeed ^ (code+1)*0x9e3779b97f4a7c15)
	u := float64(h>>11) / (1 << 53) // [0,1)
	return 1 + 2*c.dpdSens*u
}

func mix64(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

// failProb returns the probability that a single read of this cell, elapsed
// seconds after its last restore, at ambient temperature tempC, with the
// given stored bit and neighbourhood code, returns the wrong value.
func (c *weakCell) failProb(elapsed, tempC float64, storedBit uint8, code uint64, v *VendorParams, now float64) float64 {
	if storedBit != c.chargedVal {
		// The cell is storing its discharged value; leakage cannot
		// corrupt it.
		return 0
	}
	scale := v.muTempScale(tempC)
	mu := c.muAt(now) * scale * c.dpdFactor(code)
	sigma := c.sigma * scale
	return stats.NormalCDF(elapsed, mu, sigma)
}

// worstCaseFailProb returns the cell's failure probability maximized over
// neighbourhood codes — the probability under the worst-case data pattern.
// Used by the ground-truth oracle.
func (c *weakCell) worstCaseFailProb(elapsed, tempC float64, v *VendorParams, now float64) float64 {
	scale := v.muTempScale(tempC)
	sigma := c.sigma * scale
	base := c.muAt(now) * scale
	best := 0.0
	for code := uint64(0); code < dpdCodes; code++ {
		p := stats.NormalCDF(elapsed, base*c.dpdFactor(code), sigma)
		if p > best {
			best = p
		}
	}
	return best
}

// dpdCodes is the number of distinct neighbourhood codes: 4 neighbour bits
// (left, right, above, below) => 16 codes.
const dpdCodes = 16
