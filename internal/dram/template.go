package dram

import (
	"cmp"
	"fmt"
	"math"
	"slices"

	"reaper/internal/rng"
)

// This file implements shared population templates for fleet-scale device
// construction. NewDevice spends nearly all of its time drawing per-cell
// (mu, sigma, dpdSens) tuples from the vendor distributions — power-law,
// lognormal and quadratic transforms per cell. A fleet of simulated chips
// from one vendor redraws the same distributions thousands of times over; a
// PopulationTemplate pre-draws a large tuple table once, and each device
// then samples its population by picking tuples uniformly from the table
// (the empirical distribution), keeping only the cheap per-cell draws — bit
// placement, charged value, DPD seed, VRT state — on the device stream.
//
// Template-built devices are deterministic in (template, Config.Seed) but
// are NOT draw-for-draw identical to NewDevice with the same seed: the
// empirical table stands in for the analytic distributions. Use them where
// construction cost dominates and chips only need to be statistically
// faithful and mutually independent (population sweeps, fleet benchmarks) —
// not in the pinned seed-stability experiments.

// PopulationTemplate is an immutable pre-drawn table of per-cell parameter
// tuples for one vendor and retention domain. Safe for concurrent use by any
// number of NewDeviceFromTemplate calls once built.
type PopulationTemplate struct {
	vend       VendorParams
	tmin, tmax float64
	disableDPD bool

	mus, sigmas, sens []float64
}

// NewPopulationTemplate draws a size-entry tuple table from the vendor
// distributions of cfg (vendor, retention domain, DisableDPD are consulted;
// the rest of cfg is ignored) using a stream derived from seed. Larger
// tables approximate the analytic distributions more closely; a few thousand
// entries per expected weak cell count is plenty.
func NewPopulationTemplate(cfg Config, size int, seed uint64) (*PopulationTemplate, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if size <= 0 {
		return nil, fmt.Errorf("dram: template size %d must be positive", size)
	}
	v := cfg.Vendor
	tpl := &PopulationTemplate{
		vend:       v,
		tmin:       cfg.MinRetention,
		tmax:       cfg.MaxRetention,
		disableDPD: cfg.DisableDPD,
		mus:        make([]float64, size),
		sigmas:     make([]float64, size),
		sens:       make([]float64, size),
	}
	src := rng.New(seed)
	for i := 0; i < size; i++ {
		mu := powerLawSample(src, tpl.tmin, tpl.tmax, v.BERExponent)
		sigma := src.LogNormal(math.Log(v.SigmaLogMedianMS/1000), v.SigmaLogSigma)
		if sigmaCap := mu / 5; sigma > sigmaCap {
			sigma = sigmaCap
		}
		s := 0.0
		if !cfg.DisableDPD {
			u := src.Float64()
			s = v.DPDStrength * u * u
		}
		tpl.mus[i] = mu
		tpl.sigmas[i] = sigma
		tpl.sens[i] = s
	}
	return tpl, nil
}

// Size returns the number of tuples in the table.
func (t *PopulationTemplate) Size() int { return len(t.mus) }

// NewDeviceFromTemplate builds a device whose base weak cells sample their
// (mu, sigma, dpdSens) tuples from the template instead of the analytic
// distributions. cfg must agree with the template on vendor, retention
// domain, and DisableDPD; every other field (geometry, seed, weak scale,
// temperature, BankStreams) is free, which is how a fleet shares one
// template across distinct chips.
func NewDeviceFromTemplate(tpl *PopulationTemplate, cfg Config) (*Device, error) {
	if tpl == nil {
		return nil, fmt.Errorf("dram: nil population template")
	}
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if cfg.Vendor != tpl.vend || cfg.MinRetention != tpl.tmin ||
		cfg.MaxRetention != tpl.tmax || cfg.DisableDPD != tpl.disableDPD {
		return nil, fmt.Errorf("dram: config (vendor %s, domain [%v, %v], DPD %v) does not match template (vendor %s, domain [%v, %v], DPD %v)",
			cfg.Vendor.Name, cfg.MinRetention, cfg.MaxRetention, !cfg.DisableDPD,
			tpl.vend.Name, tpl.tmin, tpl.tmax, !tpl.disableDPD)
	}
	d := newDeviceShell(cfg)
	d.samplePopulationFromTemplate(tpl)
	return d, nil
}

// samplePopulationFromTemplate mirrors sampleWeakPopulation with the base
// cells' expensive distribution draws replaced by uniform tuple picks. The
// latent VRT reservoir is small (a rate times a dwell, not a BER times a
// capacity), so it keeps the exact analytic sampling.
func (d *Device) samplePopulationFromTemplate(tpl *PopulationTemplate) {
	v := &d.vend
	bits := float64(d.geom.TotalBits())
	tmin, tmax := d.cfg.MinRetention, d.cfg.MaxRetention

	expected := bits * v.BER(tmax, RefTempC) * d.cfg.WeakScale
	n := d.src.Poisson(expected)
	taken := make(map[uint64]struct{}, n)
	size := uint64(tpl.Size())
	for i := 0; i < n; i++ {
		j := d.src.Uint64n(size)
		vrt := !d.cfg.DisableVRT && d.src.Bernoulli(v.VRTFraction)
		d.addTemplateCell(taken, tpl.mus[j], tpl.sigmas[j], tpl.sens[j], vrt)
	}

	if !d.cfg.DisableVRT {
		vrtMax := tmax
		if vrtMax > vrtDomainMaxS {
			vrtMax = vrtDomainMaxS
		}
		dwellSum := v.VRTDwellLowHours + v.VRTDwellHighHours // hours
		latent := v.VRTRate(vrtMax, RefTempC, d.geom.TotalBytes()) * dwellSum * d.cfg.WeakScale
		m := d.src.Poisson(latent)
		for i := 0; i < m; i++ {
			muLow := d.samplePowerLaw(tmin, vrtMax, v.VRTRateExponent)
			d.addWeakCell(taken, muLow, true, tmax*10)
		}
	}

	slices.SortFunc(d.weak, func(a, b *weakCell) int { return cmp.Compare(a.bit, b.bit) })
	for _, c := range d.weak {
		r := d.geom.rowOfBit(c.bit)
		d.byRow[r] = append(d.byRow[r], c)
	}
	d.rebuildIndex()
}

// addTemplateCell is addWeakCell with (mu, sigma, dpdSens) already in hand
// from a template tuple: only the per-cell identity draws — bit placement,
// charged value, DPD seed, VRT state — come from the device stream.
func (d *Device) addTemplateCell(taken map[uint64]struct{}, mu, sigma, sens float64, vrt bool) {
	var bit uint64
	for {
		bit = d.src.Uint64n(uint64(d.geom.TotalBits()))
		if _, dup := taken[bit]; !dup {
			taken[bit] = struct{}{}
			break
		}
	}
	c := d.allocCell()
	*c = weakCell{
		bit:        bit,
		mu:         mu,
		sigma:      sigma,
		chargedVal: uint8(d.src.Intn(2)),
		dpdSens:    sens,
		dpdSeed:    d.src.Uint64(),
		stuck:      -1,
	}
	if vrt {
		vs := &vrtState{
			muLow:     mu,
			muHigh:    mu * (3 + 5*d.src.Float64()),
			dwellLow:  d.src.Exp(d.vend.VRTDwellLowHours) * 3600,
			dwellHigh: d.src.Exp(d.vend.VRTDwellHighHours) * 3600,
			src:       d.src.Split(bit),
		}
		if vs.dwellLow < 600 {
			vs.dwellLow = 600
		}
		if vs.dwellHigh < 600 {
			vs.dwellHigh = 600
		}
		vs.inLow = vs.src.Bernoulli(vs.dwellLow / (vs.dwellLow + vs.dwellHigh))
		mean := vs.dwellHigh
		if vs.inLow {
			mean = vs.dwellLow
		}
		vs.nextSwitch = vs.src.Exp(mean)
		c.vrt = vs
	}
	d.weak = append(d.weak, c)
}
