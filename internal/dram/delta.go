package dram

import (
	"fmt"
	"sort"

	"reaper/internal/checkpoint"
)

// The delta codec is the compact checkpoint surface for seed-reconstructible
// devices: instead of serializing the whole weak-cell population (the dense
// EncodeState, O(weak cells) — megabytes at fleet scale), EncodeDelta
// records only how the device has *diverged* from what Materialize-ing its
// ChipRef would rebuild, plus the shared tail (content, clocks, row
// deviations, stream positions, counters, round cache) that both codecs
// carry. RestoreDelta replays the divergence onto a freshly constructed
// device of the same Config.
//
// Why this is sound, invariant by invariant:
//
//   - Base population: construction draws every cell from streams that are
//     pure functions of Config.Seed (rng.New/Derive/Split), so a fresh
//     construction reproduces the population bit for bit. Nothing mutates a
//     base cell's (bit, mu, sigma, chargedVal, dpdSens) after construction.
//   - Injected cells: the only population growth path is insertWeakCell,
//     which journals every arrival in Device.injected. The delta carries
//     those cells in full, in insertion order, so replay re-inserts them and
//     rebuilds the journal identically (a re-encoded delta is byte-equal).
//   - DPD rescrambles: RescrambleDPD overwrites dpdSeed and journals the
//     cell; the delta records (index, current dpdSeed). Applying the current
//     value is idempotent, so a cell that is both injected and rescrambled
//     round-trips correctly.
//   - VRT: natural drift needs no bytes. vrtState.advance is a monotone
//     catch-up loop — advance(advance(s, t), t') == advance(s, t') for
//     t' >= t — so a fresh cell consulted at any future time lands in the
//     same state as the incrementally advanced twin. Only ForceVRTLowBurst
//     breaks the chain (it overwrites the schedule from the injector's
//     stream); forced cells are journaled and the delta snapshots their
//     full (inLow, nextSwitch, own-stream) state.
//   - Stuck overlay: reads can stick failures into any cell, so the delta
//     records the live overlay as (index, stuck) pairs in list order —
//     order matters because sweeps walk the overlay in append order, and
//     stale entries (stuck == -1 but still listed) must survive until a
//     collecting sweep compacts them.
//
// The codec's section tag differs from the dense codec's, so a blob of one
// kind fed to the other's restore fails immediately at the tag check.

// EncodeDelta serializes the device's divergence from a fresh construction
// of the same Config, plus the standard mutable tail. The blob is
// O(injected + forced + stuck + rows + cache), independent of the weak-cell
// population size. The receiver must have been built by NewDevice (or be a
// faithful restore of one); see RestoreDelta for the matching rebuild.
func (d *Device) EncodeDelta(e *checkpoint.Encoder) error {
	e.Section("dram.delta")
	e.U64(d.cfg.Seed)
	e.U64(uint64(d.geom.TotalBits()))

	// Injected cells in full, insertion order. Injected cells never carry
	// VRT state (newInjectedCell) and their stuck state rides in the overlay
	// pairs below.
	e.VarLen(len(d.injected))
	for _, c := range d.injected {
		e.U64(c.bit)
		e.F64(c.mu)
		e.F64(c.sigma)
		e.Byte(c.chargedVal)
		e.F64(c.dpdSens)
		e.U64(c.dpdSeed)
	}

	// DPD rescrambles: (index, current seed). Indices are into the final
	// bit-sorted weak slice, which replay reconstructs before applying.
	e.VarLen(len(d.dpdReseeded))
	for _, c := range d.dpdReseeded {
		e.UVar(uint64(d.cellIndexOf(c)))
		e.U64(c.dpdSeed)
	}

	// Forced VRT cells: full schedule state including the cell's own stream
	// position (post-force natural drift draws from it).
	e.VarLen(len(d.vrtForced))
	for _, c := range d.vrtForced {
		e.UVar(uint64(d.cellIndexOf(c)))
		e.Bool(c.vrt.inLow)
		e.F64(c.vrt.nextSwitch)
		encodeSrcState(e, c.vrt.src)
	}

	// Stuck overlay as (index, value) pairs in live list order.
	e.VarLen(len(d.stuckList))
	for _, c := range d.stuckList {
		e.UVar(uint64(d.cellIndexOf(c)))
		e.SVar(int64(c.stuck))
	}

	return d.encodeDeviceTail(e)
}

// RestoreDelta loads a blob produced by EncodeDelta into d, which must be a
// *pristine* device freshly constructed with the same Config and by the same
// construction path (NewDevice vs NewDeviceFromTemplate with the same
// template) as the encoder's device — that is exactly what ChipRef
// materialization provides. Pre-restore read/write activity on d is
// tolerated (the tail overwrites content, clocks and stream positions), but
// a device that has already been injected into cannot be a delta target.
// resolve reconstructs named pattern content, as in RestoreState.
func (d *Device) RestoreDelta(dec *checkpoint.Decoder, resolve func(string) (RowData, error)) error {
	if len(d.injected) != 0 || len(d.dpdReseeded) != 0 || len(d.vrtForced) != 0 {
		return fmt.Errorf("dram: delta restore target has prior divergence (%d injected, %d dpd, %d vrt)",
			len(d.injected), len(d.dpdReseeded), len(d.vrtForced))
	}
	dec.Section("dram.delta")
	if seed := dec.U64(); dec.Err() == nil && seed != d.cfg.Seed {
		return fmt.Errorf("dram: delta restore: blob seed %#x, device seed %#x", seed, d.cfg.Seed)
	}
	if bits := dec.U64(); dec.Err() == nil && bits != uint64(d.geom.TotalBits()) {
		return fmt.Errorf("dram: delta restore: blob geometry %d bits, device %d", bits, d.geom.TotalBits())
	}

	// Replay injected-cell arrivals through the live insertion path, which
	// maintains the sorted population, the row lists, the activation index,
	// and the injection journal itself.
	ni := dec.VarLen(maxRestoreCells)
	if dec.Err() != nil {
		return dec.Err()
	}
	for k := 0; k < ni; k++ {
		c := d.allocCell()
		c.bit = dec.U64()
		c.mu = dec.F64()
		c.sigma = dec.F64()
		c.chargedVal = dec.Byte()
		c.dpdSens = dec.F64()
		c.dpdSeed = dec.U64()
		c.stuck = -1
		if dec.Err() != nil {
			return dec.Err()
		}
		if c.bit >= uint64(d.geom.TotalBits()) {
			return fmt.Errorf("dram: delta restore: injected bit %d out of range", c.bit)
		}
		i := sort.Search(len(d.weak), func(i int) bool { return d.weak[i].bit >= c.bit })
		if i < len(d.weak) && d.weak[i].bit == c.bit {
			return fmt.Errorf("dram: delta restore: injected bit %d collides with an existing cell", c.bit)
		}
		d.insertWeakCell(c, i)
	}

	nd := dec.VarLen(maxRestoreCells)
	if dec.Err() != nil {
		return dec.Err()
	}
	for k := 0; k < nd; k++ {
		c, err := d.decodeCellAtVar(dec, "dpd-reseeded")
		if err != nil {
			return err
		}
		c.dpdSeed = dec.U64()
		c.dpdTracked = true
		d.dpdReseeded = append(d.dpdReseeded, c)
	}

	nv := dec.VarLen(maxRestoreCells)
	if dec.Err() != nil {
		return dec.Err()
	}
	for k := 0; k < nv; k++ {
		c, err := d.decodeCellAtVar(dec, "vrt-forced")
		if err != nil {
			return err
		}
		if c.vrt == nil {
			return fmt.Errorf("dram: delta restore: forced cell at bit %d has no VRT state", c.bit)
		}
		c.vrt.inLow = dec.Bool()
		c.vrt.nextSwitch = dec.F64()
		c.vrt.src.SetState(decodeSrcState(dec))
		c.vrtTracked = true
		d.vrtForced = append(d.vrtForced, c)
	}

	// Stuck overlay: clear whatever pre-restore activity left behind, then
	// rebuild membership, order and values from the pairs.
	for _, c := range d.stuckList {
		c.inStuckList = false
		c.stuck = -1
	}
	ns := dec.VarLen(maxRestoreCells)
	if dec.Err() != nil {
		return dec.Err()
	}
	d.stuckList = make([]*weakCell, 0, ns)
	for k := 0; k < ns; k++ {
		c, err := d.decodeCellAtVar(dec, "stuck-list")
		if err != nil {
			return err
		}
		c.stuck = int8(dec.SVar())
		c.inStuckList = true
		d.stuckList = append(d.stuckList, c)
	}

	return d.restoreDeviceTail(dec, resolve)
}

// decodeCellAtVar is decodeCellAt for varint-indexed delta records.
func (d *Device) decodeCellAtVar(dec *checkpoint.Decoder, label string) (*weakCell, error) {
	i := dec.UVar()
	if dec.Err() != nil {
		return nil, dec.Err()
	}
	if i >= uint64(len(d.weak)) {
		return nil, fmt.Errorf("dram: delta restore: %s cell index %d out of range", label, i)
	}
	return d.weak[i], nil
}
