package dram

import (
	"cmp"
	"math"
	"slices"
	"sort"
)

// This file implements the sparse active-window read path. The observation:
// at any (elapsed, temperature) the overwhelming majority of weak cells sit
// deterministically outside their mu ± zClip*sigma window — failure
// probability exactly 0 or exactly 1 — and rng.Source.Bernoulli consumes no
// draw for p <= 0 or p >= 1. A full-device sweep therefore only needs to run
// sampleReadBit for the cells whose probability is strictly inside (0, 1);
// every other cell can be skipped (p = 0) or flipped via the index (p = 1)
// without touching the seed stream, making the sparse path byte-identical to
// the dense walk by construction.
//
// The index is a single sort of the weak population by activation key
//
//	key(c) = (c.mu - zClip*c.sigma) * (1 - keyMargin)
//
// at reference temperature, with no DPD or VRT adjustment. The key is a
// conservative lower bound on the cell's true p = 0 threshold under every
// runtime condition, because each adjustment only raises the threshold:
//
//   - Temperature scales mu and sigma by the same positive factor
//     (vendor.muTempScale), so the threshold scales linearly and the p = 0
//     test becomes key*scale > eff — applied in the binary-search predicate,
//     which is why SetTemperature needs no index invalidation.
//   - dpdFactor(code) >= 1 multiplies mu only, so any stored pattern (and any
//     RescrambleDPD reseed) moves the true threshold right of the key.
//   - A VRT cell's mu field is its low-retention mean, the smaller of its two
//     states, so the key is pessimistic over both; skipping the cell also
//     skips its lazy vrtState.advance, which is safe because the per-cell VRT
//     stream catches up incrementally and draws the same values whenever it
//     is next consulted.
//
// keyMargin pushes the stored key ~1e-9 relative below the analytic
// threshold so float rounding in key*scale can only over-include a cell into
// the candidate band, never skip one that sampleReadBit would have sampled.
// Candidates are then re-tested with bit-exact copies of clippedFailProb's
// expressions before being skipped, flipped, or sampled.
//
// The index orders cells by key, not by bit, and the seed-stream contract
// requires d.src draws to occur in global bit order. Classification itself
// draws nothing, so it may run in key order; the surviving band is sorted by
// bit and merged with the deviant-row cells (which always take the original
// slow path) into one bit-ordered sampling walk.
const keyMargin = 1e-9

// activationKey returns the cell's sort key: a conservative reference-
// temperature lower bound on the elapsed time at which its failure
// probability can first leave zero. Always positive, because construction
// caps sigma at mu/5 and zClip*1/5 < 1.
func activationKey(c *weakCell) float64 {
	return (c.mu - zClip*c.sigma) * (1 - keyMargin)
}

// IndexStats counts, cumulatively over a device's lifetime, how the sparse
// active-window index disposed of weak cells during full-device sweeps.
type IndexStats struct {
	// Skipped is cells excluded with zero RNG work: outside the active band
	// by binary search, or p = 0 by the exact per-cell test (discharged
	// stored value, or below the DPD-adjusted threshold).
	Skipped uint64
	// Flipped is deterministic p = 1 failures applied via the index without
	// evaluating the failure CDF or consuming a draw.
	Flipped uint64
	// Sampled is cells routed through sampleReadBit on the bulk fast path
	// (probability strictly inside (0,1), plus VRT cells in the band).
	Sampled uint64
	// Slowpath is cells handled by the original slow path: cells in rows
	// with per-row deviations, plus stuck-overlay visits.
	Slowpath uint64
}

// Add returns the element-wise sum of two stats (module-level aggregation).
func (s IndexStats) Add(o IndexStats) IndexStats {
	return IndexStats{
		Skipped:  s.Skipped + o.Skipped,
		Flipped:  s.Flipped + o.Flipped,
		Sampled:  s.Sampled + o.Sampled,
		Slowpath: s.Slowpath + o.Slowpath,
	}
}

// Sub returns the element-wise difference s - o (per-round deltas).
func (s IndexStats) Sub(o IndexStats) IndexStats {
	return IndexStats{
		Skipped:  s.Skipped - o.Skipped,
		Flipped:  s.Flipped - o.Flipped,
		Sampled:  s.Sampled - o.Sampled,
		Slowpath: s.Slowpath - o.Slowpath,
	}
}

// IndexStats returns the device's cumulative sparse-index counters.
func (d *Device) IndexStats() IndexStats { return d.idx }

// rebuildIndex (re)derives the activation index from the weak population.
// Ties on key are broken by bit index so the order is fully deterministic.
// Keys are computed once up front rather than inside the comparator:
// activationKey is pure, so sorting precomputed (key, cell) pairs yields the
// same order while keeping the dominant construction sort off the float math.
func (d *Device) rebuildIndex() {
	type keyedCell struct {
		key float64
		c   *weakCell
	}
	ks := make([]keyedCell, len(d.weak))
	for i, c := range d.weak {
		ks[i] = keyedCell{activationKey(c), c}
	}
	slices.SortFunc(ks, func(a, b keyedCell) int {
		// Lazy tie-break: cmp.Or would dereference both cells on every
		// comparison; keys almost never tie, so branch first.
		if r := cmp.Compare(a.key, b.key); r != 0 {
			return r
		}
		return cmp.Compare(a.c.bit, b.c.bit)
	})
	d.actCells = make([]*weakCell, len(ks))
	d.actKeys = make([]float64, len(ks))
	for i, k := range ks {
		d.actCells[i] = k.c
		d.actKeys[i] = k.key
	}
}

// indexInsert adds one cell to the activation index, preserving key order
// (fault injection adds cells one at a time to a live device).
func (d *Device) indexInsert(c *weakCell) {
	key := activationKey(c)
	j := sort.Search(len(d.actKeys), func(i int) bool {
		return d.actKeys[i] > key || (d.actKeys[i] == key && d.actCells[i].bit >= c.bit)
	})
	d.actKeys = slices.Insert(d.actKeys, j, key)
	d.actCells = slices.Insert(d.actCells, j, c)
}

// markStuck records a retention failure sticking into a cell: the read (or
// refresh) restored the wrong value, which the cell now returns until
// rewritten. Every flip site must go through here (or set the cell's stuck
// value and call noteStuck at a deterministic point, as the bank shards do)
// so the stuck overlay — walked by collecting sweeps in place of a full
// population scan — stays a superset of the cells with stuck >= 0.
func (d *Device) markStuck(c *weakCell, wrong uint8) {
	c.stuck = int8(wrong)
	d.noteStuck(c)
}

// noteStuck performs the device-wide bookkeeping of a failure sticking: the
// flip counter and the stuck-overlay membership. Bank-sharded sweeps defer it
// to the shard merge so concurrent shards never touch shared state.
func (d *Device) noteStuck(c *weakCell) {
	d.flipsSoFar++
	if !c.inStuckList {
		c.inStuckList = true
		d.stuckList = append(d.stuckList, c)
	}
}

// dropStuckList empties the stuck overlay (bulk rewrites clear every stuck
// cell). Only overlay members can have stuck >= 0, so clearing via the list
// replaces the old full population walk.
func (d *Device) dropStuckList() {
	for _, c := range d.stuckList {
		c.stuck = -1
		c.inStuckList = false
	}
	d.stuckList = d.stuckList[:0]
}

// sweep is the shared implementation of ReadCompareAll (collect = true) and
// RestoreAll (collect = false): a full-device read-and-restore at simulated
// time now, returning the sorted failing bit indices when collecting.
//
// Draw-order equivalence with the dense walk: the cells visited by the
// bit-ordered merge below (active band + deviant rows) are a superset of the
// cells that consume d.src draws, visited in global bit order; all other
// cells provably consume no draws, so the seed stream advances exactly as
// the dense per-cell walk advanced it.
func (d *Device) sweep(now float64, collect bool) []uint64 {
	fails := d.failScratch[:0]
	elapsed := now - d.bulkTime
	scale := d.vend.muTempScale(d.tempC)
	// eff is the largest elapsed value any failure probability is evaluated
	// at this sweep. Under auto-refresh the per-cycle trial window is the
	// refresh interval (and the residual window is shorter still), so a cell
	// with p(eff) = 0 contributes no stick probability and no draws at all.
	eff := elapsed
	if d.autoRef > 0 && eff > d.autoRef {
		eff = d.autoRef
	}

	// Stuck overlay: cells corrupted by earlier sweeps read back their stuck
	// value regardless of elapsed time, so a collecting sweep must visit them
	// even when the active band is empty. Walked before classification so a
	// cell flipped below is never reported twice; entries whose stuck state
	// was cleared by a partial write are compacted out in passing.
	if collect && len(d.stuckList) > 0 {
		live := d.stuckList[:0]
		for _, c := range d.stuckList {
			if c.stuck < 0 {
				c.inStuckList = false
				continue
			}
			live = append(live, c)
			row := d.geom.rowOfBit(c.bit)
			if len(d.rows) > 0 {
				if _, deviant := d.rows[row]; deviant {
					continue // the deviant-row walk below reports it
				}
			}
			d.idx.Slowpath++
			a := d.geom.AddrOf(c.bit)
			written := uint8(d.bulkData.Word(row, a.Word) >> uint(a.Bit) & 1)
			if uint8(c.stuck) != written {
				fails = append(fails, c.bit)
			}
		}
		d.stuckList = live
	}

	if d.bankSrcs != nil {
		// Logical shard accounting: a banked sweep partitions into one shard
		// per bank regardless of how many workers execute them, so the
		// counters are worker-count invariant like every other series.
		d.bank.BankedSweeps++
		d.bank.BankShards += uint64(d.geom.Banks)
	}

	if e := d.lookupRound(elapsed); e != nil {
		fails = d.sweepFromCache(e, now, scale, eff, collect, fails)
	} else {
		fails = d.sweepClassify(now, elapsed, scale, eff, collect, fails)
	}

	// Every row has now been read out and restored. Rows whose record holds
	// no content deviation are now indistinguishable from the bulk state
	// (restoredAt == bulkTime, bulk content), so dropping them restores the
	// no-deviation fast path for subsequent sweeps.
	d.bulkTime = now
	for r, rs := range d.rows {
		if rs.data == nil && rs.overrides == nil {
			delete(d.rows, r)
			continue
		}
		rs.restoredAt = now
	}
	d.readsDone++
	var out []uint64
	if collect && len(fails) > 0 {
		slices.Sort(fails)
		out = make([]uint64, len(fails))
		copy(out, fails)
	}
	d.failScratch = fails[:0] // keep the accumulator capacity for the next sweep
	return out
}

// sweepClassify is the full classification path of a sweep: binary-search
// the activation index, classify every candidate, then sample the surviving
// band merged with the deviant rows. When the device state allows it, the
// classification is also recorded as a round-cache entry so the next sweep
// at this exact signature can skip straight to the band (incremental.go).
func (d *Device) sweepClassify(now, elapsed, scale, eff float64, collect bool, fails []uint64) []uint64 {
	// Binary-search the activation index to the active band: cells with
	// key*scale > eff are deterministically p = 0 at every window this sweep
	// evaluates and are never touched.
	k := 0
	if eff > 0 {
		k = sort.Search(len(d.actKeys), func(i int) bool { return d.actKeys[i]*scale > eff })
	}
	d.idx.Skipped += uint64(len(d.actKeys) - k)
	d.incr.FullSweeps++

	var e *roundEntry
	if d.roundCacheable() {
		e = &roundEntry{skipped: uint64(len(d.actKeys) - k), dirtyLen: len(d.dirtyCells)}
	}
	if d.shardedMode() {
		fails = d.classifySharded(now, scale, eff, k, collect, fails, e)
	} else {
		fails = d.classifySeq(now, scale, eff, k, collect, fails, e)
	}
	if e != nil {
		d.storeRound(roundKey{data: d.bulkData, tempC: d.tempC, elapsed: elapsed, autoRef: d.autoRef}, e)
	}
	return fails
}

// classifySeq is the single-goroutine classification and sampling walk. In
// BankStreams mode it is byte-identical to classifySharded at any worker
// count: the global bit-order walk visits each bank's cells in bit order,
// and srcFor routes every draw to the owning bank's stream.
func (d *Device) classifySeq(now, scale, eff float64, k int, collect bool, fails []uint64, e *roundEntry) []uint64 {
	// Classify the candidates (key order; no draws happen here). Non-VRT
	// bulk-context cells are re-tested with clippedFailProb's exact
	// expressions: p = 0 skips, p = 1 flips via the index — both without a
	// draw, matching Bernoulli's no-draw contract — and only the strict
	// interior joins the sampling band.
	band := d.band[:0]
	haveDeviant := len(d.rows) > 0
	for _, c := range d.actCells[:k] {
		if c.stuck >= 0 {
			continue // no draw either way; the stuck overlay reports it
		}
		row := d.geom.rowOfBit(c.bit)
		if haveDeviant {
			if _, deviant := d.rows[row]; deviant {
				continue // sampled with its row's own content and restore time
			}
		}
		if c.vrt != nil {
			band = append(band, c) // VRT stays on the slow sample path
			continue
		}
		a := d.geom.AddrOf(c.bit)
		written := uint8(d.bulkData.Word(row, a.Word) >> uint(a.Bit) & 1)
		if written != c.chargedVal {
			d.idx.Skipped++ // storing the discharged value: leakage-immune
			if e != nil {
				e.skipped++
			}
			continue
		}
		code := d.neighborhoodCodeOf(c)
		mu := c.mu * scale * c.dpdFactor(code)
		sigma := c.sigma * scale
		if eff < mu-zClip*sigma {
			d.idx.Skipped++
			if e != nil {
				e.skipped++
			}
			continue
		}
		if eff > mu+zClip*sigma {
			// Deterministic failure. Without auto-refresh this is
			// Bernoulli(1); with it, p(interval) = 1 makes the stick
			// probability exactly 1 (-expm1(k*log1p(-1)) = 1). Neither
			// consumes a draw, so flipping here is seed-stream identical.
			d.markStuck(c, written^1)
			d.idx.Flipped++
			if e != nil {
				e.flips = append(e.flips, flipRec{c, written ^ 1})
			}
			if collect {
				fails = append(fails, c.bit)
			}
			continue
		}
		band = append(band, c)
	}
	slices.SortFunc(band, func(a, b *weakCell) int { return cmp.Compare(a.bit, b.bit) })
	d.idx.Sampled += uint64(len(band))
	if e != nil {
		e.band = append(e.band, band...)
	}

	// Bit-ordered merge of the band (bulk content, bulk restore time) with
	// the deviant rows (per-row content, overrides and restore times — the
	// original slow path, which also covers candidates excluded above).
	bi := 0
	sampleBandBelow := func(limit uint64) {
		for bi < len(band) && band[bi].bit < limit {
			c := band[bi]
			bi++
			row := d.geom.rowOfBit(c.bit)
			a := d.geom.AddrOf(c.bit)
			written := uint8(d.bulkData.Word(row, a.Word) >> uint(a.Bit) & 1)
			got := d.sampleReadBit(c, written, now, d.bulkTime)
			if collect && got != written {
				fails = append(fails, c.bit)
			}
		}
	}
	if haveDeviant {
		devRows := make([]uint32, 0, len(d.rows))
		for r := range d.rows {
			devRows = append(devRows, r)
		}
		slices.Sort(devRows)
		rowBits := uint64(d.geom.RowBits())
		for _, row := range devRows {
			sampleBandBelow(uint64(row) * rowBits)
			rs := d.rows[row]
			data := rs.data
			if data == nil {
				data = d.bulkData
			}
			for _, c := range d.byRow[row] {
				d.idx.Slowpath++
				a := d.geom.AddrOf(c.bit)
				w := data.Word(row, a.Word)
				if rs.overrides != nil {
					if v, ok := rs.overrides[a.Word]; ok {
						w = v
					}
				}
				written := uint8(w >> uint(a.Bit) & 1)
				got := d.sampleReadBit(c, written, now, rs.restoredAt)
				if collect && got != written {
					fails = append(fails, c.bit)
				}
			}
		}
	}
	sampleBandBelow(math.MaxUint64)
	d.band = band[:0] // keep the scratch capacity for the next sweep
	return fails
}
