package dram

import (
	"cmp"
	"math"
	"slices"
	"sort"

	"reaper/internal/parallel"
	"reaper/internal/rng"
)

// This file implements bank-sharded full-device sweeps: intra-chip
// parallelism for ReadCompareAll / RestoreAll on one big device.
//
// The single-stream device cannot parallelize a sweep — the seed-stream
// contract requires every draw to happen in global bit order, which is a
// sequential dependency. Config.BankStreams removes the dependency by giving
// each bank its own sampling stream, a pure function of (Seed, bank) via
// rng.Derive. Geometry is bank-major (bit / bankBits is the bank), so the
// global bit order restricted to one bank is that bank's bit order: a
// sequential sweep that routes each draw through srcFor consumes each bank
// stream in exactly the order a per-bank shard would, which makes the shard
// execution below byte-identical to the sequential banked sweep — and hence
// identical at every worker count.
//
// Shards share the device read-only (bulk content, geometry, row maps, the
// activation index) and mutate only per-cell state of cells in their own
// bank (stuck value, VRT advance, neighbourhood-code cache; row±1 neighbour
// reads stay inside the bank by construction). Everything device-wide —
// disposition counters, the failing-bit list, the stuck overlay, the round
// cache entry — is written into per-shard scratch and committed at the merge
// in bank order, so the result is deterministic by construction.

// bankStreamSalt offsets the rng.Derive keyspace of per-bank sampling
// streams away from other Derive users of the device seed.
const bankStreamSalt = 0xb401c5a1f00d0000

// srcFor returns the stream a draw for the given bit must come from: the
// device stream in default mode, the owning bank's stream in BankStreams
// mode.
func (d *Device) srcFor(bit uint64) *rng.Source {
	if d.bankSrcs == nil {
		return d.src
	}
	return d.bankSrcs[bit/d.bankBits]
}

// SetSweepWorkers bounds the goroutines a BankStreams-mode full-device sweep
// may shard across; n <= 1 (and the default 0) keeps sweeps on the calling
// goroutine. It has no effect in default single-stream mode, and results are
// byte-identical at every setting.
func (d *Device) SetSweepWorkers(n int) {
	if n < 1 {
		n = 1
	}
	d.sweepWorkers = n
}

// shardedMode reports whether full-device sweeps currently execute as
// parallel per-bank shards.
func (d *Device) shardedMode() bool {
	return d.bankSrcs != nil && d.sweepWorkers > 1 && d.geom.Banks > 1
}

// BankStats counts, cumulatively over a device's lifetime, the banked-mode
// sweep activity. Shards are counted logically (one per bank per banked
// sweep) so the series is identical at every worker count.
type BankStats struct {
	// BankedSweeps is full-device sweeps executed with per-bank streams.
	BankedSweeps uint64
	// BankShards is the logical per-bank shards those sweeps partitioned
	// into (BankedSweeps * Banks).
	BankShards uint64
}

// Add returns the element-wise sum of two stats (module-level aggregation).
func (s BankStats) Add(o BankStats) BankStats {
	return BankStats{
		BankedSweeps: s.BankedSweeps + o.BankedSweeps,
		BankShards:   s.BankShards + o.BankShards,
	}
}

// Sub returns the element-wise difference s - o (per-round deltas).
func (s BankStats) Sub(o BankStats) BankStats {
	return BankStats{
		BankedSweeps: s.BankedSweeps - o.BankedSweeps,
		BankShards:   s.BankShards - o.BankShards,
	}
}

// BankStats returns the device's cumulative banked-sweep counters.
func (d *Device) BankStats() BankStats { return d.bank }

// bankShard is the per-bank scratch of one sharded sweep: the bank's
// candidate cells, its sampling band, and everything the shard may not write
// into shared state — deterministic flips, newly stuck cells, failing bits,
// and disposition counters — all committed by mergeShard in bank order.
type bankShard struct {
	cand     []*weakCell
	band     []*weakCell
	flips    []flipRec
	newStuck []*weakCell
	fails    []uint64
	stats    IndexStats
}

func (d *Device) ensureShards() {
	if d.shards == nil {
		d.shards = make([]bankShard, d.geom.Banks)
	}
}

// mergeShard commits one shard's results into device-wide state. Called in
// bank order on the sweep goroutine; per-bank failing lists are ascending
// and banks own contiguous ascending bit ranges, but fails is sorted later
// anyway, so only the counter and overlay commits rely on the ordering being
// deterministic (they are order-insensitive sums and set inserts). When a
// round-cache entry is under construction the shard's classification is
// folded into it; per-bank bands are bit-sorted and banks are visited in
// ascending-bit order, so the concatenated entry band is globally bit-sorted.
func (d *Device) mergeShard(s *bankShard, fails []uint64, e *roundEntry) []uint64 {
	d.idx = d.idx.Add(s.stats)
	fails = append(fails, s.fails...)
	for _, c := range s.newStuck {
		d.noteStuck(c)
	}
	if e != nil {
		e.skipped += s.stats.Skipped
		e.flips = append(e.flips, s.flips...)
		e.band = append(e.band, s.band...)
	}
	s.cand = s.cand[:0]
	s.band = s.band[:0]
	s.flips = s.flips[:0]
	s.newStuck = s.newStuck[:0]
	s.fails = s.fails[:0]
	s.stats = IndexStats{}
	return fails
}

// classifySharded is classifySeq executed as per-bank shards: bucket the
// candidates (preserving key order within each bank), partition the deviant
// rows, run every bank's classify-and-sample walk concurrently, and merge in
// bank order.
func (d *Device) classifySharded(now, scale, eff float64, k int, collect bool, fails []uint64, e *roundEntry) []uint64 {
	d.ensureShards()
	sh := d.shards
	for _, c := range d.actCells[:k] {
		b := c.bit / d.bankBits
		sh[b].cand = append(sh[b].cand, c)
	}
	// Deviant rows, sorted and partitioned by bank (rows are bank-major).
	var devRows []uint32
	if len(d.rows) > 0 {
		devRows = make([]uint32, 0, len(d.rows))
		for r := range d.rows {
			devRows = append(devRows, r)
		}
		slices.Sort(devRows)
	}
	rpb := uint32(d.geom.RowsPerBank)
	devStart := make([]int, d.geom.Banks+1)
	for b := 1; b <= d.geom.Banks; b++ {
		first := uint32(b) * rpb
		devStart[b] = sort.Search(len(devRows), func(i int) bool { return devRows[i] >= first })
	}
	parallel.ShardLoop(d.geom.Banks, d.sweepWorkers, func(b int) {
		d.runBankShard(&sh[b], b, devRows[devStart[b]:devStart[b+1]], now, scale, eff, collect)
	})
	for b := range sh {
		fails = d.mergeShard(&sh[b], fails, e)
	}
	return fails
}

// runBankShard classifies and samples one bank's candidates. It mirrors
// classifySeq exactly — same classification expressions, same bit-ordered
// merge of the band with the bank's deviant rows — but draws from the bank
// stream and defers every device-wide write to the shard scratch.
func (d *Device) runBankShard(s *bankShard, bank int, devRows []uint32, now, scale, eff float64, collect bool) {
	src := d.bankSrcs[bank]
	haveDeviant := len(d.rows) > 0
	band := s.band[:0]
	for _, c := range s.cand {
		if c.stuck >= 0 {
			continue
		}
		row := d.geom.rowOfBit(c.bit)
		if haveDeviant {
			if _, deviant := d.rows[row]; deviant {
				continue
			}
		}
		if c.vrt != nil {
			band = append(band, c)
			continue
		}
		a := d.geom.AddrOf(c.bit)
		written := uint8(d.bulkData.Word(row, a.Word) >> uint(a.Bit) & 1)
		if written != c.chargedVal {
			s.stats.Skipped++
			continue
		}
		code := d.neighborhoodCodeOf(c)
		mu := c.mu * scale * c.dpdFactor(code)
		sigma := c.sigma * scale
		if eff < mu-zClip*sigma {
			s.stats.Skipped++
			continue
		}
		if eff > mu+zClip*sigma {
			c.stuck = int8(written ^ 1)
			s.newStuck = append(s.newStuck, c)
			s.flips = append(s.flips, flipRec{c, written ^ 1})
			s.stats.Flipped++
			if collect {
				s.fails = append(s.fails, c.bit)
			}
			continue
		}
		band = append(band, c)
	}
	slices.SortFunc(band, func(a, b *weakCell) int { return cmp.Compare(a.bit, b.bit) })
	s.stats.Sampled += uint64(len(band))
	s.band = band

	bi := 0
	sampleBandBelow := func(limit uint64) {
		for bi < len(band) && band[bi].bit < limit {
			c := band[bi]
			bi++
			row := d.geom.rowOfBit(c.bit)
			a := d.geom.AddrOf(c.bit)
			written := uint8(d.bulkData.Word(row, a.Word) >> uint(a.Bit) & 1)
			got, flipped := d.sampleReadBitOn(c, written, now, d.bulkTime, src)
			if flipped {
				s.newStuck = append(s.newStuck, c)
			}
			if collect && got != written {
				s.fails = append(s.fails, c.bit)
			}
		}
	}
	rowBits := uint64(d.geom.RowBits())
	for _, row := range devRows {
		sampleBandBelow(uint64(row) * rowBits)
		rs := d.rows[row]
		data := rs.data
		if data == nil {
			data = d.bulkData
		}
		for _, c := range d.byRow[row] {
			s.stats.Slowpath++
			a := d.geom.AddrOf(c.bit)
			w := data.Word(row, a.Word)
			if rs.overrides != nil {
				if v, ok := rs.overrides[a.Word]; ok {
					w = v
				}
			}
			written := uint8(w >> uint(a.Bit) & 1)
			got, flipped := d.sampleReadBitOn(c, written, now, rs.restoredAt, src)
			if flipped {
				s.newStuck = append(s.newStuck, c)
			}
			if collect && got != written {
				s.fails = append(s.fails, c.bit)
			}
		}
	}
	sampleBandBelow(math.MaxUint64)
}

// replayBandSharded samples a cached round entry's band as per-bank shards.
// The entry band is globally bit-sorted, so every bank owns one contiguous
// range of it; replay involves no deviant rows (cache hits require none).
func (d *Device) replayBandSharded(e *roundEntry, now float64, collect bool, fails []uint64) []uint64 {
	d.ensureShards()
	sh := d.shards
	bounds := make([]int, d.geom.Banks+1)
	for b := 1; b < d.geom.Banks; b++ {
		first := uint64(b) * d.bankBits
		bounds[b] = sort.Search(len(e.band), func(i int) bool { return e.band[i].bit >= first })
	}
	bounds[d.geom.Banks] = len(e.band)
	parallel.ShardLoop(d.geom.Banks, d.sweepWorkers, func(b int) {
		s := &sh[b]
		src := d.bankSrcs[b]
		for j, c := range e.band[bounds[b]:bounds[b+1]] {
			if c.stuck >= 0 {
				continue
			}
			s.stats.Sampled++
			got, written, flipped := d.sampleBandCached(e, bounds[b]+j, c, now, src)
			if flipped {
				s.newStuck = append(s.newStuck, c)
			}
			if collect && got != written {
				s.fails = append(s.fails, c.bit)
			}
		}
	})
	for b := range sh {
		fails = d.mergeShard(&sh[b], fails, nil)
	}
	return fails
}
