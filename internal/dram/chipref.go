package dram

// ChipRef is the compact, copyable handle fleet-scale campaigns hold instead
// of a materialized *Device. A device is a pure function of its validated
// Config — the rng streams (rng.New/Derive/Split) guarantee that NewDevice
// with the same (seed, vendor, geometry, knobs) redraws a byte-identical
// weak-cell population — so a fleet of a million chips needs only a million
// ChipRefs (a few hundred bytes each) plus the handful of devices whose
// shard is currently active. ChipRefs never go stale and never need
// invalidation: they carry no derived state, only the construction inputs,
// and those are immutable for the life of a campaign.
//
// A ChipRef is not a cache key into shared storage; Materialize builds a
// brand-new device every call. Divergence accumulated by a previous
// materialization (injected cells, stuck overlay, read history) is the delta
// codec's job: EncodeDelta captures it as O(deviations) bytes, and
// RestoreDelta replays it onto a fresh Materialize result.
type ChipRef struct {
	cfg Config
}

// NewChipRef validates cfg eagerly and wraps it. Validation at ref-creation
// time (rather than materialization time) means a fleet spec with a bad
// geometry or vendor fails at submission, not mid-campaign inside a shard.
func NewChipRef(cfg Config) (ChipRef, error) {
	if err := cfg.validate(); err != nil {
		return ChipRef{}, err
	}
	return ChipRef{cfg: cfg}, nil
}

// Config returns the validated construction config (defaults filled).
func (r ChipRef) Config() Config { return r.cfg }

// Seed returns the chip's identity seed.
func (r ChipRef) Seed() uint64 { return r.cfg.Seed }

// Materialize builds the full device from the ref. The result is
// byte-identical across calls: same population, same stream positions.
func (r ChipRef) Materialize() (*Device, error) {
	return NewDevice(r.cfg)
}

// MaterializeFromTemplate builds the device against a shared per-vendor
// population template (NewDeviceFromTemplate), the cheap construction path
// fleet sweeps use. The template must match the ref's vendor and retention
// domain; the result is deterministic in (template, ref).
func (r ChipRef) MaterializeFromTemplate(tpl *PopulationTemplate) (*Device, error) {
	return NewDeviceFromTemplate(tpl, r.cfg)
}

// Ref returns the handle this device can be rebuilt from. Ref().Materialize()
// reproduces the device as constructed; divergence since construction is
// recoverable via EncodeDelta/RestoreDelta.
func (d *Device) Ref() ChipRef { return ChipRef{cfg: d.cfg} }
