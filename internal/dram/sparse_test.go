package dram

import (
	"slices"
	"testing"

	"reaper/internal/patterns"
	"reaper/internal/rng"
)

// denseReadCompareAll is the pre-index reference implementation of
// ReadCompareAll, kept verbatim as the oracle the sparse active-window path
// must match bit-for-bit: walk every weak cell in bit order (hoisting the
// row-state lookup to row boundaries) and run sampleReadBit on each. Any
// divergence in fails, stuck state, or seed-stream position between this
// walk and Device.sweep is a sparse-path bug.
func denseReadCompareAll(d *Device, now float64) []uint64 {
	var fails []uint64
	var (
		curRow     uint32
		curData    RowData
		curOverr   map[int]uint64
		restoredAt float64
		haveRow    bool
	)
	for _, c := range d.weak {
		row := d.geom.rowOfBit(c.bit)
		if !haveRow || row != curRow {
			curRow, haveRow = row, true
			var rs *rowState
			curData, restoredAt, rs = d.stateOf(row)
			curOverr = nil
			if rs != nil {
				curOverr = rs.overrides
			}
		}
		a := d.geom.AddrOf(c.bit)
		w := curData.Word(row, a.Word)
		if curOverr != nil {
			if v, ok := curOverr[a.Word]; ok {
				w = v
			}
		}
		written := uint8(w >> uint(a.Bit) & 1)
		got := d.sampleReadBit(c, written, now, restoredAt)
		if got != written {
			fails = append(fails, c.bit)
		}
	}
	d.bulkTime = now
	for _, rs := range d.rows {
		rs.restoredAt = now
	}
	d.readsDone++
	slices.Sort(fails)
	return fails
}

// driveSparseVsDense runs one sparse device and one dense-reference device
// (identical config and seed) through an identical randomized operation
// script — pattern rewrites, temperature moves, auto-refresh toggles,
// partial writes and reads, snapshot/restore, fault injection — comparing
// every read-compare result bit-for-bit, and finally comparing per-cell
// stuck state, operation counters, and the devices' seed-stream positions.
func driveSparseVsDense(t *testing.T, cfg Config, opSeed uint64, passes int) {
	t.Helper()
	sparse, err := NewDevice(cfg)
	if err != nil {
		t.Fatal(err)
	}
	dense, err := NewDevice(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if sparse.WeakCellCount() == 0 {
		t.Fatal("degenerate test: no weak cells sampled")
	}

	ops := rng.New(opSeed)
	pats := []RowData{
		patterns.Solid1(),
		patterns.Checkerboard(),
		patterns.Random(opSeed),
		patterns.Invert(patterns.Random(opSeed + 1)),
	}
	waits := []float64{0.01, 0.128, 0.7, 2.048, 5.5}
	refs := []float64{0, 0.064, 0.3}

	now := 0.0
	sparse.WriteAll(pats[0], now)
	dense.WriteAll(pats[0], now)

	for p := 0; p < passes; p++ {
		switch ops.Intn(9) {
		case 0: // ambient temperature move
			temp := RefTempC + float64(ops.Intn(31)) - 5
			sparse.SetTemperature(temp)
			dense.SetTemperature(temp)
		case 1: // auto-refresh reconfiguration
			ar := refs[ops.Intn(len(refs))]
			sparse.SetAutoRefresh(ar)
			dense.SetAutoRefresh(ar)
		case 2: // full-row rewrite
			bank := ops.Intn(cfg.Geometry.Banks)
			row := ops.Intn(cfg.Geometry.RowsPerBank)
			words := make([]uint64, cfg.Geometry.WordsPerRow)
			fill := ops.Uint64()
			for i := range words {
				words[i] = fill
			}
			if err := sparse.WriteRow(bank, row, words, now); err != nil {
				t.Fatal(err)
			}
			if err := dense.WriteRow(bank, row, words, now); err != nil {
				t.Fatal(err)
			}
		case 3: // single-word write (row activation restores the row)
			bank := ops.Intn(cfg.Geometry.Banks)
			row := ops.Intn(cfg.Geometry.RowsPerBank)
			word := ops.Intn(cfg.Geometry.WordsPerRow)
			val := ops.Uint64()
			if err := sparse.WriteWord(bank, row, word, val, now); err != nil {
				t.Fatal(err)
			}
			if err := dense.WriteWord(bank, row, word, val, now); err != nil {
				t.Fatal(err)
			}
		case 4: // row readback must agree too
			bank := ops.Intn(cfg.Geometry.Banks)
			row := ops.Intn(cfg.Geometry.RowsPerBank)
			sw, err := sparse.ReadRow(bank, row, now)
			if err != nil {
				t.Fatal(err)
			}
			dw, err := dense.ReadRow(bank, row, now)
			if err != nil {
				t.Fatal(err)
			}
			if !slices.Equal(sw, dw) {
				t.Fatalf("pass %d: ReadRow(%d,%d) diverged", p, bank, row)
			}
		case 5: // snapshot + immediate restore (stuck overlay rebuild)
			if err := sparse.RestoreContent(sparse.SnapshotContent(), now); err != nil {
				t.Fatal(err)
			}
			if err := dense.RestoreContent(dense.SnapshotContent(), now); err != nil {
				t.Fatal(err)
			}
		case 6: // bulk pattern rewrite
			pat := pats[ops.Intn(len(pats))]
			sparse.WriteAll(pat, now)
			dense.WriteAll(pat, now)
		case 7: // refresh sweep without collection
			sparse.RestoreAll(now)
			denseReadCompareAll(dense, now)
		case 8: // fault injection: new cells, VRT forcing, DPD reshuffle
			injSeed := ops.Uint64()
			sSrc, dSrc := rng.New(injSeed), rng.New(injSeed)
			sBits := sparse.InjectWeakCells(sSrc, 2, 0, now)
			dBits := dense.InjectWeakCells(dSrc, 2, 0, now)
			if !slices.Equal(sBits, dBits) {
				t.Fatalf("pass %d: injection diverged", p)
			}
			sparse.ForceVRTLowBurst(sSrc, 1, 0, now)
			dense.ForceVRTLowBurst(dSrc, 1, 0, now)
			sparse.RescrambleDPD(sSrc, 3)
			dense.RescrambleDPD(dSrc, 3)
		}

		now += waits[ops.Intn(len(waits))]
		sf := sparse.ReadCompareAll(now)
		df := denseReadCompareAll(dense, now)
		if !slices.Equal(sf, df) {
			t.Fatalf("pass %d (now=%.3f): sparse fails %d, dense fails %d\nsparse: %v\ndense:  %v",
				p, now, len(sf), len(df), sf, df)
		}
	}

	for i := range sparse.weak {
		if sparse.weak[i].stuck != dense.weak[i].stuck {
			t.Fatalf("cell %d (bit %d): sparse stuck=%d dense stuck=%d",
				i, sparse.weak[i].bit, sparse.weak[i].stuck, dense.weak[i].stuck)
		}
	}
	sr, sfl := sparse.Stats()
	dr, dfl := dense.Stats()
	if sr != dr || sfl != dfl {
		t.Fatalf("stats diverged: sparse (%d reads, %d flips) vs dense (%d reads, %d flips)", sr, sfl, dr, dfl)
	}
	// Strongest check: both devices must have consumed exactly the same
	// number of draws from their seed streams, so the next raw value agrees.
	if s, d := sparse.src.Uint64(), dense.src.Uint64(); s != d {
		t.Fatalf("seed streams diverged: next draw %#x vs %#x", s, d)
	}
}

func sparseTestConfig(seed uint64) Config {
	return Config{
		Geometry:  Geometry{Banks: 4, RowsPerBank: 32, WordsPerRow: 64},
		Vendor:    VendorB(),
		Seed:      seed,
		WeakScale: 20,
	}
}

// TestSparseMatchesDenseReference is the core property test of the sparse
// active-window read path: across seeds, temperatures, data patterns,
// auto-refresh settings, partial writes and fault injection, ReadCompareAll
// must be bit-for-bit and draw-for-draw identical to the dense per-cell walk.
func TestSparseMatchesDenseReference(t *testing.T) {
	for seed := uint64(1); seed <= 6; seed++ {
		cfg := sparseTestConfig(seed)
		driveSparseVsDense(t, cfg, seed*977, 30)
	}
}

// TestSparseMatchesDenseVRTHeavy stresses the VRT slow-path routing and the
// deferred-advance argument: half the population switches retention states.
func TestSparseMatchesDenseVRTHeavy(t *testing.T) {
	for seed := uint64(1); seed <= 3; seed++ {
		cfg := sparseTestConfig(seed)
		cfg.Vendor.VRTFraction = 0.5
		cfg.Vendor.VRTDwellLowHours = 0.5
		cfg.Vendor.VRTDwellHighHours = 0.5
		driveSparseVsDense(t, cfg, seed*1237, 30)
	}
}

// TestSparseMatchesDenseHotAndCold covers the temperature-scale edges of the
// binary-search predicate, where every cell is active (hot) or almost none
// are (cold).
func TestSparseMatchesDenseHotAndCold(t *testing.T) {
	for _, temp := range []float64{25, 85} {
		cfg := sparseTestConfig(11)
		cfg.AmbientTempC = temp
		driveSparseVsDense(t, cfg, uint64(temp)*31, 25)
	}
}

// TestSparseMatchesDenseNoDPD exercises the ablation configuration where
// every dpdFactor is exactly 1 and the key margin is the only slack between
// the index key and the exact threshold.
func TestSparseMatchesDenseNoDPD(t *testing.T) {
	cfg := sparseTestConfig(5)
	cfg.DisableDPD = true
	driveSparseVsDense(t, cfg, 4242, 30)
}

// TestIndexSkipsFastAutoRefresh pins the headline win: under the default
// 64 ms auto-refresh the whole weak population (min retention 256 ms) is
// deterministically safe, so a sweep must classify zero cells and consume
// zero draws.
func TestIndexSkipsFastAutoRefresh(t *testing.T) {
	d, err := NewDevice(sparseTestConfig(3))
	if err != nil {
		t.Fatal(err)
	}
	d.SetAutoRefresh(0.064)
	d.WriteAll(patterns.Checkerboard(), 0)
	if fails := d.ReadCompareAll(10.0); len(fails) != 0 {
		t.Fatalf("fast auto-refresh sweep reported %d fails", len(fails))
	}
	st := d.IndexStats()
	if st.Sampled != 0 || st.Flipped != 0 || st.Slowpath != 0 {
		t.Fatalf("fast auto-refresh sweep touched cells: %+v", st)
	}
	if st.Skipped != uint64(d.WeakCellCount()) {
		t.Fatalf("Skipped = %d, want whole population %d", st.Skipped, d.WeakCellCount())
	}
}

// TestIndexStatsAccounting checks the disposition counters cover the whole
// population on a bulk-state sweep and accumulate monotonically.
func TestIndexStatsAccounting(t *testing.T) {
	d, err := NewDevice(sparseTestConfig(4))
	if err != nil {
		t.Fatal(err)
	}
	d.WriteAll(patterns.Solid1(), 0)
	_ = d.ReadCompareAll(2.048)
	st := d.IndexStats()
	if got, want := st.Skipped+st.Flipped+st.Sampled, uint64(d.WeakCellCount()); got != want {
		t.Fatalf("first-sweep dispositions sum to %d, want population %d (%+v)", got, want, st)
	}
	_ = d.ReadCompareAll(4.096)
	st2 := d.IndexStats()
	if st2.Skipped < st.Skipped || st2.Sampled < st.Sampled || st2.Flipped < st.Flipped {
		t.Fatalf("counters regressed: %+v -> %+v", st, st2)
	}
}
