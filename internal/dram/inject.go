package dram

import (
	"math"
	"slices"
	"sort"

	"reaper/internal/rng"
)

// This file implements the device-side fault-injection hooks used by
// internal/faultinject: controlled ways to perturb a live device with the
// paper's adversities — new-weak-cell arrival (Figure 4), VRT state forcing
// (Section 2.3.1), and data-pattern-dependence reshuffling (Section 2.3.2).
//
// Every method draws exclusively from the caller-supplied rng stream. The
// device's own stream (d.src) encodes the chip's sampled identity and its
// read history; consuming draws from it here would silently change every
// subsequent read outcome and break the seed-stability guarantees the
// snapshot tests pin down.

// InjectWeakCellAt adds one weak cell at the given bit position, with a
// retention mean drawn from the vendor's calibrated power-law tail capped at
// maxMuSeconds (<= 0 means the device's full retention domain). It returns
// false if the bit already hosts a weak cell. now is the current simulated
// time; the new cell participates in reads from the next row activation on.
//
// Note that injection changes the weak-cell population, so content snapshots
// taken before the call can no longer be restored (RestoreContent checks the
// population length).
func (d *Device) InjectWeakCellAt(src *rng.Source, bit uint64, maxMuSeconds, now float64) bool {
	if bit >= uint64(d.geom.TotalBits()) {
		return false
	}
	i := sort.Search(len(d.weak), func(i int) bool { return d.weak[i].bit >= bit })
	if i < len(d.weak) && d.weak[i].bit == bit {
		return false
	}
	d.insertWeakCell(d.newInjectedCell(src, bit, maxMuSeconds), i)
	_ = now
	return true
}

// InjectWeakCells adds n weak cells at fresh random bit positions, modelling
// the steady-state arrival of new retention failures (Figure 4 / Equation 7's
// accumulation term A). Retention means are drawn from the vendor power-law
// tail capped at maxMuSeconds (<= 0: full domain). It returns the injected
// bit indices in ascending order.
func (d *Device) InjectWeakCells(src *rng.Source, n int, maxMuSeconds, now float64) []uint64 {
	bits := make([]uint64, 0, n)
	total := uint64(d.geom.TotalBits())
	for len(bits) < n {
		bit := src.Uint64n(total)
		if d.InjectWeakCellAt(src, bit, maxMuSeconds, now) {
			bits = append(bits, bit)
		}
	}
	slices.Sort(bits)
	return bits
}

// newInjectedCell samples one permanent (non-VRT) weak cell from the vendor
// distributions using the caller's stream.
func (d *Device) newInjectedCell(src *rng.Source, bit uint64, maxMuSeconds float64) *weakCell {
	v := &d.vend
	tmin, tmax := d.cfg.MinRetention, d.cfg.MaxRetention
	if maxMuSeconds > 0 && maxMuSeconds < tmax {
		tmax = maxMuSeconds
	}
	if tmax < tmin {
		tmax = tmin
	}
	mu := powerLawSample(src, tmin, tmax, v.BERExponent)
	sigma := src.LogNormal(math.Log(v.SigmaLogMedianMS/1000), v.SigmaLogSigma)
	if sigmaCap := mu / 5; sigma > sigmaCap {
		sigma = sigmaCap
	}
	sens := 0.0
	if !d.cfg.DisableDPD {
		u := src.Float64()
		sens = v.DPDStrength * u * u
	}
	c := d.allocCell()
	*c = weakCell{
		bit:        bit,
		mu:         mu,
		sigma:      sigma,
		chargedVal: uint8(src.Intn(2)),
		dpdSens:    sens,
		dpdSeed:    src.Uint64(),
		stuck:      -1,
	}
	return c
}

// insertWeakCell places c into the sorted weak slice at index i, into its
// row's cell list (preserving bit order in both), and into the activation
// index (preserving key order). The cell also joins the round-cache dirty
// list so live cached classifications fold it in on their next hit, and the
// injection journal so the delta codec can replay the arrival.
func (d *Device) insertWeakCell(c *weakCell, i int) {
	d.weak = slices.Insert(d.weak, i, c)
	row := d.geom.rowOfBit(c.bit)
	cells := d.byRow[row]
	j := sort.Search(len(cells), func(j int) bool { return cells[j].bit >= c.bit })
	d.byRow[row] = slices.Insert(cells, j, c)
	d.indexInsert(c)
	d.noteDirtyCell(c)
	d.injected = append(d.injected, c)
}

// ForceVRTLowBurst forces up to n VRT cells that are currently in their
// high-retention state into the low-retention state, modelling a burst of
// VRT escapes (Section 2.3.1: cells that profiled clean because they were in
// the long state suddenly start failing). Only cells whose low-state
// retention mean is at most maxMuLowSeconds are eligible (<= 0: no bound),
// which lets a fault scenario target cells that actually fail at the
// interval under test. The forced cells' next natural transition is
// rescheduled from the caller's stream. Returns the forced bits, ascending.
func (d *Device) ForceVRTLowBurst(src *rng.Source, n int, maxMuLowSeconds, now float64) []uint64 {
	var candidates []*weakCell
	for _, c := range d.weak {
		if c.vrt == nil {
			continue
		}
		c.vrt.advance(now)
		if c.vrt.inLow {
			continue
		}
		if maxMuLowSeconds > 0 && c.vrt.muLow > maxMuLowSeconds {
			continue
		}
		candidates = append(candidates, c)
	}
	var bits []uint64
	for len(bits) < n && len(candidates) > 0 {
		i := src.Intn(len(candidates))
		c := candidates[i]
		candidates[i] = candidates[len(candidates)-1]
		candidates = candidates[:len(candidates)-1]
		c.vrt.inLow = true
		dwell := src.Exp(c.vrt.dwellLow)
		if dwell < 600 {
			dwell = 600
		}
		c.vrt.nextSwitch = now + dwell
		// The forced baseline replaces the construction draw, so natural
		// catch-up can no longer reproduce this cell: journal it for the
		// delta codec.
		if !c.vrtTracked {
			c.vrtTracked = true
			d.vrtForced = append(d.vrtForced, c)
		}
		bits = append(bits, c.bit)
	}
	slices.Sort(bits)
	return bits
}

// RescrambleDPD re-randomizes the data-pattern coupling of up to n
// DPD-sensitive weak cells: each selected cell gets a fresh dpdSeed, so the
// neighbourhood data that used to expose its worst-case retention no longer
// does and vice versa. This models the paper's Section 2.3.2 hazard — data
// rewritten after profiling shifts which cells the stored pattern exposes —
// as a mutation event a soak scenario can fire on rewrites. Returns the
// affected bits, ascending.
func (d *Device) RescrambleDPD(src *rng.Source, n int) []uint64 {
	var candidates []*weakCell
	for _, c := range d.weak {
		if c.dpdSens > 0 {
			candidates = append(candidates, c)
		}
	}
	var bits []uint64
	for len(bits) < n && len(candidates) > 0 {
		i := src.Intn(len(candidates))
		c := candidates[i]
		candidates[i] = candidates[len(candidates)-1]
		candidates = candidates[:len(candidates)-1]
		c.dpdSeed = src.Uint64()
		if !c.dpdTracked {
			c.dpdTracked = true
			d.dpdReseeded = append(d.dpdReseeded, c)
		}
		bits = append(bits, c.bit)
	}
	slices.Sort(bits)
	// dpdSeed feeds the classification threshold hash, so cached round
	// classifications may silently be wrong for the rescrambled cells: drop
	// them all (the only injection hook that must).
	if len(bits) > 0 {
		d.invalidateRounds()
	}
	return bits
}

// VRTCellsInLow reports, of the device's VRT cells with low-state retention
// mean at most maxMuLowSeconds (<= 0: all), how many are currently in the
// low state. Fault scenarios use it to size escape bursts.
func (d *Device) VRTCellsInLow(maxMuLowSeconds, now float64) (inLow, total int) {
	for _, c := range d.weak {
		if c.vrt == nil {
			continue
		}
		if maxMuLowSeconds > 0 && c.vrt.muLow > maxMuLowSeconds {
			continue
		}
		c.vrt.advance(now)
		total++
		if c.vrt.inLow {
			inLow++
		}
	}
	return inLow, total
}

// powerLawSample draws t in [tmin, tmax] with CDF proportional to t^beta
// from the given stream (the stream-parameterized form of samplePowerLaw).
func powerLawSample(src *rng.Source, tmin, tmax, beta float64) float64 {
	u := src.Float64()
	lo := math.Pow(tmin, beta)
	hi := math.Pow(tmax, beta)
	return math.Pow(lo+u*(hi-lo), 1/beta)
}
