package dram

import (
	"slices"
	"testing"

	"reaper/internal/patterns"
	"reaper/internal/rng"
)

// driveIncrVsFull runs two devices with identical config and seed — one with
// the incremental round cache on (the default), one forced to reclassify in
// full every sweep — through a multi-round profiling script that revisits
// conditions (so the cache actually hits), steps temperature, grows the
// elapsed window, injects faults, and toggles auto-refresh. Every round must
// produce identical fail lists, disposition counters, and operation counters;
// at the end, per-cell stuck state and the seed-stream positions must agree,
// and the incremental device must have served a healthy share of its sweeps
// from cache (otherwise the test exercised nothing).
func driveIncrVsFull(t *testing.T, cfg Config, opSeed uint64, workers int) {
	t.Helper()
	inc, err := NewDevice(cfg)
	if err != nil {
		t.Fatal(err)
	}
	full, err := NewDevice(cfg)
	if err != nil {
		t.Fatal(err)
	}
	full.SetRoundCache(false)
	if workers > 0 {
		inc.SetSweepWorkers(workers)
		full.SetSweepWorkers(workers)
	}
	if inc.WeakCellCount() == 0 {
		t.Fatal("degenerate test: no weak cells sampled")
	}

	ops := rng.New(opSeed)
	pats := []RowData{
		patterns.Solid1(),
		patterns.Checkerboard(),
		patterns.Random(opSeed),
	}
	now := 0.0
	round := 0
	read := func(n float64) {
		t.Helper()
		round++
		incF := inc.ReadCompareAll(n)
		fullF := full.ReadCompareAll(n)
		if !slices.Equal(incF, fullF) {
			t.Fatalf("round %d (now=%.3f): incremental fails %d, full fails %d\nincremental: %v\nfull:        %v",
				round, n, len(incF), len(fullF), incF, fullF)
		}
		if inc.IndexStats() != full.IndexStats() {
			t.Fatalf("round %d: index stats diverged: incremental %+v vs full %+v",
				round, inc.IndexStats(), full.IndexStats())
		}
	}
	writeAll := func(pat RowData) {
		inc.WriteAll(pat, now)
		full.WriteAll(pat, now)
	}

	// Phase 1: steady-state cadence — same pattern, wait, and conditions every
	// round. Round 1 classifies in full; rounds 2+ must hit the cache.
	writeAll(pats[0])
	for i := 0; i < 6; i++ {
		now += 2.048
		read(now)
		writeAll(pats[0])
	}

	// Phase 2: double reads without a refresh in between — the second read
	// replays a cached entry against a live stuck overlay (the Skipped
	// reconciliation path).
	for i := 0; i < 4; i++ {
		now += 2.048
		read(now)
		now += 2.048
		read(now)
		writeAll(pats[0])
	}

	// Phase 3: condition churn — temperature steps, pattern cycling,
	// auto-refresh toggles, elapsed-window growth. Revisited signatures hit;
	// fresh ones classify in full and populate the cache.
	temps := []float64{RefTempC, RefTempC + 10, RefTempC + 25}
	refs := []float64{0, 0.3}
	waits := []float64{0.512, 2.048, 5.5}
	for i := 0; i < 40; i++ {
		switch ops.Intn(6) {
		case 0:
			temp := temps[ops.Intn(len(temps))]
			inc.SetTemperature(temp)
			full.SetTemperature(temp)
		case 1:
			ar := refs[ops.Intn(len(refs))]
			inc.SetAutoRefresh(ar)
			full.SetAutoRefresh(ar)
		case 2: // injected cells join the dirty list and fold into live entries
			injSeed := ops.Uint64()
			iSrc, fSrc := rng.New(injSeed), rng.New(injSeed)
			iBits := inc.InjectWeakCells(iSrc, 2, 0, now)
			fBits := full.InjectWeakCells(fSrc, 2, 0, now)
			if !slices.Equal(iBits, fBits) {
				t.Fatalf("iteration %d: injection diverged", i)
			}
		case 3: // DPD rescramble is the invalidate-everything event
			injSeed := ops.Uint64()
			iSrc, fSrc := rng.New(injSeed), rng.New(injSeed)
			inc.RescrambleDPD(iSrc, 2)
			full.RescrambleDPD(fSrc, 2)
		case 4: // VRT forcing must NOT need invalidation (always band-classified)
			injSeed := ops.Uint64()
			iSrc, fSrc := rng.New(injSeed), rng.New(injSeed)
			inc.ForceVRTLowBurst(iSrc, 1, 0, now)
			full.ForceVRTLowBurst(fSrc, 1, 0, now)
		case 5: // partial write: deviant rows block both cache build and hit
			bank := ops.Intn(cfg.Geometry.Banks)
			row := ops.Intn(cfg.Geometry.RowsPerBank)
			val := ops.Uint64()
			word := ops.Intn(cfg.Geometry.WordsPerRow)
			if err := inc.WriteWord(bank, row, word, val, now); err != nil {
				t.Fatal(err)
			}
			if err := full.WriteWord(bank, row, word, val, now); err != nil {
				t.Fatal(err)
			}
		}
		now += waits[ops.Intn(len(waits))]
		read(now)
		if ops.Intn(3) != 0 {
			writeAll(pats[ops.Intn(len(pats))])
		}
	}

	for i := range inc.weak {
		if inc.weak[i].stuck != full.weak[i].stuck {
			t.Fatalf("cell %d (bit %d): incremental stuck=%d full stuck=%d",
				i, inc.weak[i].bit, inc.weak[i].stuck, full.weak[i].stuck)
		}
	}
	ir, ifl := inc.Stats()
	fr, ffl := full.Stats()
	if ir != fr || ifl != ffl {
		t.Fatalf("stats diverged: incremental (%d reads, %d flips) vs full (%d reads, %d flips)", ir, ifl, fr, ffl)
	}
	if s, f := inc.src.Uint64(), full.src.Uint64(); s != f {
		t.Fatalf("seed streams diverged: next draw %#x vs %#x", s, f)
	}
	for b := range inc.bankSrcs {
		if iv, fv := inc.bankSrcs[b].Uint64(), full.bankSrcs[b].Uint64(); iv != fv {
			t.Fatalf("bank %d streams diverged: next draw %#x vs %#x", b, iv, fv)
		}
	}
	ist, fst := inc.IncrStats(), full.IncrStats()
	if ist.FastSweeps == 0 {
		t.Fatalf("incremental device never hit the round cache: %+v", ist)
	}
	if fst.FastSweeps != 0 {
		t.Fatalf("cache-disabled device served sweeps from cache: %+v", fst)
	}
	if ist.FastSweeps+ist.FullSweeps != fst.FullSweeps {
		t.Fatalf("sweep accounting inconsistent: incremental %+v vs full %+v", ist, fst)
	}
}

// TestIncrementalMatchesFullResample is the core property test of incremental
// re-profiling: with the round cache on, every sweep must be byte-identical —
// fail lists, counters, stuck state, seed-stream position — to a device that
// reclassifies the whole population every round, through temperature steps,
// elapsed growth, fault injection, and auto-refresh toggles.
func TestIncrementalMatchesFullResample(t *testing.T) {
	for seed := uint64(1); seed <= 4; seed++ {
		driveIncrVsFull(t, sparseTestConfig(seed), seed*433, 0)
	}
}

// TestIncrementalMatchesFullBanked runs the same parity drive in BankStreams
// mode at workers 1 and 4: the cached replay path must shard identically to
// the full path at any worker count.
func TestIncrementalMatchesFullBanked(t *testing.T) {
	for _, workers := range []int{1, 4} {
		for seed := uint64(1); seed <= 2; seed++ {
			cfg := sparseTestConfig(seed)
			cfg.BankStreams = true
			driveIncrVsFull(t, cfg, seed*911, workers)
		}
	}
}

// TestIncrementalVRTHeavy keeps half the population switching retention
// states: VRT cells are always band-classified, so cached entries must stay
// valid across arbitrary state churn without any invalidation.
func TestIncrementalVRTHeavy(t *testing.T) {
	cfg := sparseTestConfig(3)
	cfg.Vendor.VRTFraction = 0.5
	cfg.Vendor.VRTDwellLowHours = 0.5
	cfg.Vendor.VRTDwellHighHours = 0.5
	driveIncrVsFull(t, cfg, 2741, 0)
}

// TestRoundCacheOverflow drives more distinct sweep signatures than
// maxRoundEntries to cross the drop-everything overflow policy, then checks a
// revisited signature still replays correctly.
func TestRoundCacheOverflow(t *testing.T) {
	cfg := sparseTestConfig(6)
	inc, err := NewDevice(cfg)
	if err != nil {
		t.Fatal(err)
	}
	full, err := NewDevice(cfg)
	if err != nil {
		t.Fatal(err)
	}
	full.SetRoundCache(false)
	now := 0.0
	pat := patterns.Checkerboard()
	inc.WriteAll(pat, now)
	full.WriteAll(pat, now)
	// maxRoundEntries+8 distinct elapsed values, then a revisit loop.
	wait := 0.5
	for i := 0; i < maxRoundEntries+8; i++ {
		now += wait
		wait += 0.01
		iF := inc.ReadCompareAll(now)
		fF := full.ReadCompareAll(now)
		if !slices.Equal(iF, fF) {
			t.Fatalf("signature %d diverged", i)
		}
		inc.WriteAll(pat, now)
		full.WriteAll(pat, now)
	}
	for i := 0; i < 4; i++ {
		now += 2.048
		iF := inc.ReadCompareAll(now)
		fF := full.ReadCompareAll(now)
		if !slices.Equal(iF, fF) {
			t.Fatalf("revisit %d diverged", i)
		}
		inc.WriteAll(pat, now)
		full.WriteAll(pat, now)
	}
	if s, f := inc.src.Uint64(), full.src.Uint64(); s != f {
		t.Fatalf("seed streams diverged after overflow: %#x vs %#x", s, f)
	}
	if inc.IncrStats().FastSweeps == 0 {
		t.Fatal("revisits never hit the cache after overflow")
	}
}
