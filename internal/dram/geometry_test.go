package dram

import (
	"testing"
	"testing/quick"
)

func TestGeometryValidate(t *testing.T) {
	good := Geometry{Banks: 8, RowsPerBank: 64, WordsPerRow: 32}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	for _, bad := range []Geometry{
		{Banks: 0, RowsPerBank: 1, WordsPerRow: 1},
		{Banks: 1, RowsPerBank: -1, WordsPerRow: 1},
		{Banks: 1, RowsPerBank: 1, WordsPerRow: 0},
	} {
		if err := bad.Validate(); err == nil {
			t.Errorf("geometry %+v not rejected", bad)
		}
	}
}

func TestGeometrySizes(t *testing.T) {
	g := Geometry{Banks: 8, RowsPerBank: 4096, WordsPerRow: 256}
	if g.TotalRows() != 8*4096 {
		t.Errorf("TotalRows = %d", g.TotalRows())
	}
	if g.RowBits() != 256*64 {
		t.Errorf("RowBits = %d", g.RowBits())
	}
	if g.TotalBits() != int64(8)*4096*256*64 {
		t.Errorf("TotalBits = %d", g.TotalBits())
	}
	if g.TotalBytes() != g.TotalBits()/8 {
		t.Errorf("TotalBytes inconsistent")
	}
}

func TestGeometryForBits(t *testing.T) {
	for _, bits := range []int64{1, 1 << 20, 1 << 30, 8 << 30} {
		g := GeometryForBits(bits)
		if err := g.Validate(); err != nil {
			t.Fatalf("GeometryForBits(%d) invalid: %v", bits, err)
		}
		if g.TotalBits() < bits {
			t.Errorf("GeometryForBits(%d) too small: %d", bits, g.TotalBits())
		}
		// Should not overshoot by more than one row per bank.
		if g.TotalBits() > bits+int64(g.Banks)*int64(g.RowBits()) {
			t.Errorf("GeometryForBits(%d) overshoots: %d", bits, g.TotalBits())
		}
	}
}

func TestAddrRoundTrip(t *testing.T) {
	g := Geometry{Banks: 8, RowsPerBank: 128, WordsPerRow: 32}
	f := func(raw uint64) bool {
		bit := raw % uint64(g.TotalBits())
		a := g.AddrOf(bit)
		if a.Bank < 0 || a.Bank >= g.Banks || a.Row < 0 || a.Row >= g.RowsPerBank ||
			a.Word < 0 || a.Word >= g.WordsPerRow || a.Bit < 0 || a.Bit >= 64 {
			return false
		}
		return g.BitIndex(a) == bit
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}

func TestGlobalRowConsistentWithAddr(t *testing.T) {
	g := Geometry{Banks: 4, RowsPerBank: 16, WordsPerRow: 2}
	for bank := 0; bank < g.Banks; bank++ {
		for row := 0; row < g.RowsPerBank; row++ {
			bit := g.BitIndex(Addr{Bank: bank, Row: row})
			if g.rowOfBit(bit) != g.GlobalRow(bank, row) {
				t.Fatalf("rowOfBit/GlobalRow disagree at bank %d row %d", bank, row)
			}
		}
	}
}

func TestVendorParams(t *testing.T) {
	for _, v := range Vendors() {
		if err := v.Validate(); err != nil {
			t.Errorf("vendor %s invalid: %v", v.Name, err)
		}
	}
	bad := VendorB()
	bad.TempCoeff = -1
	if err := bad.Validate(); err == nil {
		t.Error("negative temp coeff not rejected")
	}
}

func TestVendorBERAnchors(t *testing.T) {
	v := VendorB()
	// The Section 6.2.3 anchor: 2464 failures in 2GB at 1024ms/45C.
	got := v.BER(1.024, 45) * float64(int64(2)<<30*8)
	if got < 2300 || got > 2600 {
		t.Errorf("BER anchor gives %v failures per 2GB, want ~2464", got)
	}
	// Temperature scaling: ~10x per +10C (Eq 1, vendor B coeff 0.20 -> e^2 = 7.4x).
	ratio := v.BER(1.024, 55) / v.BER(1.024, 45)
	if ratio < 7 || ratio > 8 {
		t.Errorf("BER 10C ratio = %v, want e^2", ratio)
	}
	if v.BER(0, 45) != 0 {
		t.Error("BER at t=0 must be 0")
	}
}

func TestVendorVRTRateAnchor(t *testing.T) {
	v := VendorB()
	got := v.VRTRate(1.024, 45, 2<<30)
	if got < 0.7 || got > 0.76 {
		t.Errorf("VRT rate anchor = %v cells/hr per 2GB, want 0.73", got)
	}
	// Rate must scale linearly with capacity.
	if r := v.VRTRate(1.024, 45, 4<<30) / got; r < 1.99 || r > 2.01 {
		t.Errorf("VRT rate capacity scaling = %v, want 2", r)
	}
	// And polynomially with interval.
	if v.VRTRate(2.048, 45, 2<<30) <= got*4 {
		t.Error("VRT rate should grow super-quadratically with interval")
	}
}

func TestMuTempScaleConsistentWithBER(t *testing.T) {
	// Scaling all means by muTempScale must reproduce the BER temperature
	// factor for the power-law population: count(t) ~ (t/scale)^beta.
	v := VendorB()
	scale := v.muTempScale(55)
	countRatio := pow(1/scale, v.BERExponent)
	berRatio := v.BER(1.024, 55) / v.BER(1.024, 45)
	if countRatio/berRatio < 0.99 || countRatio/berRatio > 1.01 {
		t.Errorf("muTempScale inconsistent with BER: %v vs %v", countRatio, berRatio)
	}
	if v.muTempScale(45) != 1 {
		t.Error("muTempScale at reference temp must be 1")
	}
}
