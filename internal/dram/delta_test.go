package dram

import (
	"bytes"
	"slices"
	"strings"
	"testing"

	"reaper/internal/checkpoint"
	"reaper/internal/rng"
)

// deltaTestConfig is the shared mid-campaign delta-codec fixture: small
// enough to drive quickly, big enough that the weak population dwarfs the
// divergence the delta records.
func deltaTestConfig() Config {
	return Config{
		Geometry:  Geometry{Banks: 8, RowsPerBank: 64, WordsPerRow: 256},
		Vendor:    VendorB(),
		Seed:      4242,
		WeakScale: 20,
	}
}

// TestDeltaEvictRematerializeTwin is the shard-eviction correctness
// property: drive a device through a messy mid-campaign segment (sweeps,
// injections, a forced VRT burst, DPD rescrambles, partial writes), then
// "evict" it — encode only its divergence delta, drop it, re-materialize a
// fresh device from the same seed, and restore the delta. The re-materialized
// chip must match the never-evicted twin exactly: same next rng draw, same
// stuck-overlay list, same round-cache counters, and byte-identical dense
// state — then stay in lockstep through a second driven segment.
func TestDeltaEvictRematerializeTwin(t *testing.T) {
	cfg := deltaTestConfig()
	orig, err := NewDevice(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if orig.WeakCellCount() == 0 {
		t.Fatal("degenerate test: no weak cells")
	}

	// Segment 1: reach a state with injections, forced VRT, rescrambled DPD,
	// live and stale stuck entries, row deviations, and a warm round cache.
	driveScript(orig, rng.New(0x5EC1), 0)
	if len(orig.injected) == 0 || len(orig.vrtForced) == 0 || len(orig.dpdReseeded) == 0 {
		t.Fatalf("script left no divergence to test: %d injected, %d vrt, %d dpd",
			len(orig.injected), len(orig.vrtForced), len(orig.dpdReseeded))
	}
	if len(orig.stuckList) == 0 {
		t.Fatal("script left no stuck overlay to test")
	}

	de := checkpoint.NewEncoder()
	if err := orig.EncodeDelta(de); err != nil {
		t.Fatal(err)
	}
	delta := de.Data()

	// The delta must be far smaller than the dense blob — that size gap is
	// the whole point of seed-reconstructible fleet checkpoints.
	fe := checkpoint.NewEncoder()
	if err := orig.EncodeState(fe); err != nil {
		t.Fatal(err)
	}
	dense := fe.Data()
	if len(delta) >= len(dense)/4 {
		t.Errorf("delta blob %d bytes not much smaller than dense %d bytes", len(delta), len(dense))
	}

	// Evict and re-materialize through the ChipRef handle — the same path
	// the fleet executor takes for a chip outside the active shard.
	ref := orig.Ref()
	rem, err := ref.Materialize()
	if err != nil {
		t.Fatal(err)
	}
	if err := rem.RestoreDelta(checkpoint.NewDecoder(delta), resolvePattern); err != nil {
		t.Fatal(err)
	}

	// Next rng draw: the device stream must resume at the twin's position.
	if rem.src.State() != orig.src.State() {
		t.Fatalf("device stream position diverges: %v vs %v", rem.src.State(), orig.src.State())
	}
	if got, want := rem.src.Uint64(), orig.src.Uint64(); got != want {
		t.Fatalf("next draw diverges: %#x vs %#x", got, want)
	}
	// (Undo the probe draws symmetrically: both sides consumed one value.)

	// Stuck overlay: same membership, same order, same values — including
	// any stale (stuck == -1 but still listed) entries the script left.
	if len(rem.stuckList) != len(orig.stuckList) {
		t.Fatalf("stuck overlay length %d vs %d", len(rem.stuckList), len(orig.stuckList))
	}
	for i := range orig.stuckList {
		a, b := orig.stuckList[i], rem.stuckList[i]
		if a.bit != b.bit || a.stuck != b.stuck {
			t.Fatalf("stuck overlay entry %d: (bit %d, stuck %d) vs (bit %d, stuck %d)",
				i, a.bit, a.stuck, b.bit, b.stuck)
		}
	}

	// Round cache: identical counters and entry set, so the re-materialized
	// chip replays cached rounds exactly where the twin would.
	if orig.IncrStats() != rem.IncrStats() {
		t.Fatalf("incremental stats diverge: %+v vs %+v", orig.IncrStats(), rem.IncrStats())
	}
	if len(orig.rounds) != len(rem.rounds) {
		t.Fatalf("round cache size %d vs %d", len(rem.rounds), len(orig.rounds))
	}

	// Total-state check: both devices dense-encode byte-identically.
	ea, eb := checkpoint.NewEncoder(), checkpoint.NewEncoder()
	if err := orig.EncodeState(ea); err != nil {
		t.Fatal(err)
	}
	if err := rem.EncodeState(eb); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ea.Data(), eb.Data()) {
		t.Fatal("re-materialized device dense-encodes differently from the never-evicted twin")
	}

	// Segment 2: lockstep through another driven segment, including fresh
	// injections and bursts on both sides.
	failsA := driveScript(orig, rng.New(0x0B5E), 30)
	failsB := driveScript(rem, rng.New(0x0B5E), 30)
	if !slices.Equal(failsA, failsB) {
		t.Fatalf("post-rematerialize fail streams diverge: %d vs %d fails", len(failsA), len(failsB))
	}

	// And the delta codec itself must still round-trip: the second segment's
	// divergence re-encodes identically on both sides.
	da, db := checkpoint.NewEncoder(), checkpoint.NewEncoder()
	if err := orig.EncodeDelta(da); err != nil {
		t.Fatal(err)
	}
	if err := rem.EncodeDelta(db); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(da.Data(), db.Data()) {
		t.Fatal("post-lockstep deltas encode differently")
	}
}

// TestDeltaTemplateTwin proves the delta codec composes with template-based
// materialization: a device built from a PopulationTemplate, driven, evicted
// and re-materialized from the same template restores byte-identically.
func TestDeltaTemplateTwin(t *testing.T) {
	cfg := deltaTestConfig()
	tpl, err := NewPopulationTemplate(cfg, 4096, cfg.Seed)
	if err != nil {
		t.Fatal(err)
	}
	orig, err := NewDeviceFromTemplate(tpl, cfg)
	if err != nil {
		t.Fatal(err)
	}
	driveScript(orig, rng.New(0x7E41), 0)

	e := checkpoint.NewEncoder()
	if err := orig.EncodeDelta(e); err != nil {
		t.Fatal(err)
	}

	rem, err := orig.Ref().MaterializeFromTemplate(tpl)
	if err != nil {
		t.Fatal(err)
	}
	if err := rem.RestoreDelta(checkpoint.NewDecoder(e.Data()), resolvePattern); err != nil {
		t.Fatal(err)
	}

	ea, eb := checkpoint.NewEncoder(), checkpoint.NewEncoder()
	if err := orig.EncodeState(ea); err != nil {
		t.Fatal(err)
	}
	if err := rem.EncodeState(eb); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ea.Data(), eb.Data()) {
		t.Fatal("template-materialized restore dense-encodes differently")
	}
}

// TestDeltaRestoreGuards pins the delta codec's refusal paths: a target with
// prior divergence, a wrong-seed target, and a dense blob fed to the delta
// decoder must all fail loudly.
func TestDeltaRestoreGuards(t *testing.T) {
	cfg := deltaTestConfig()
	orig, err := NewDevice(cfg)
	if err != nil {
		t.Fatal(err)
	}
	driveScript(orig, rng.New(0x5EC1), 0)
	e := checkpoint.NewEncoder()
	if err := orig.EncodeDelta(e); err != nil {
		t.Fatal(err)
	}
	delta := e.Data()

	t.Run("diverged-target", func(t *testing.T) {
		d, err := NewDevice(cfg)
		if err != nil {
			t.Fatal(err)
		}
		d.InjectWeakCells(rng.New(9), 1, 0, 0)
		err = d.RestoreDelta(checkpoint.NewDecoder(delta), resolvePattern)
		if err == nil || !strings.Contains(err.Error(), "prior divergence") {
			t.Fatalf("want prior-divergence refusal, got %v", err)
		}
	})
	t.Run("wrong-seed", func(t *testing.T) {
		other := cfg
		other.Seed = cfg.Seed + 1
		d, err := NewDevice(other)
		if err != nil {
			t.Fatal(err)
		}
		err = d.RestoreDelta(checkpoint.NewDecoder(delta), resolvePattern)
		if err == nil || !strings.Contains(err.Error(), "seed") {
			t.Fatalf("want seed mismatch, got %v", err)
		}
	})
	t.Run("dense-blob", func(t *testing.T) {
		fe := checkpoint.NewEncoder()
		if err := orig.EncodeState(fe); err != nil {
			t.Fatal(err)
		}
		d, err := NewDevice(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := d.RestoreDelta(checkpoint.NewDecoder(fe.Data()), resolvePattern); err == nil {
			t.Fatal("delta decoder accepted a dense blob")
		}
	})
}

// TestChipRefMaterialize pins the handle's contract: a ref is a pure
// function of Config, materializes to a device byte-identical to direct
// construction, and rejects invalid configs eagerly.
func TestChipRefMaterialize(t *testing.T) {
	cfg := deltaTestConfig()
	ref, err := NewChipRef(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if ref.Seed() != cfg.Seed {
		t.Fatalf("ref seed %d, want %d", ref.Seed(), cfg.Seed)
	}
	a, err := ref.Materialize()
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewDevice(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ea, eb := checkpoint.NewEncoder(), checkpoint.NewEncoder()
	if err := a.EncodeState(ea); err != nil {
		t.Fatal(err)
	}
	if err := b.EncodeState(eb); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ea.Data(), eb.Data()) {
		t.Fatal("materialized device differs from direct construction")
	}
	if _, err := NewChipRef(Config{}); err == nil {
		t.Fatal("NewChipRef accepted an invalid config")
	}
}
