package dram

import (
	"testing"
	"testing/quick"
)

// Property tests on the oracle-facing probability surface: the model's
// physical monotonicities must hold for every weak cell at every condition.

func TestCellFailProbMonotoneInInterval(t *testing.T) {
	d := testDevice(t, 60, nil)
	cells := d.Cells(0)
	f := func(idx uint16, rawT uint32, rawDelta uint16) bool {
		c := cells[int(idx)%len(cells)]
		t0 := 0.1 + float64(rawT%8000)/1000          // 0.1 .. 8.1s
		delta := 0.001 + float64(rawDelta%2000)/1000 // up to +2s
		p0 := d.CellFailProb(c.Bit, t0, 45, 0)
		p1 := d.CellFailProb(c.Bit, t0+delta, 45, 0)
		return p1 >= p0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 3000}); err != nil {
		t.Fatal(err)
	}
}

func TestCellFailProbMonotoneInTemperature(t *testing.T) {
	d := testDevice(t, 61, nil)
	cells := d.Cells(0)
	f := func(idx uint16, rawT uint32, rawDT uint8) bool {
		c := cells[int(idx)%len(cells)]
		interval := 0.2 + float64(rawT%6000)/1000
		dT := float64(rawDT % 15)
		p0 := d.CellFailProb(c.Bit, interval, 40, 0)
		p1 := d.CellFailProb(c.Bit, interval, 40+dT, 0)
		return p1 >= p0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 3000}); err != nil {
		t.Fatal(err)
	}
}

func TestCellFailProbBounds(t *testing.T) {
	d := testDevice(t, 62, nil)
	cells := d.Cells(0)
	f := func(idx uint16, rawT uint32, rawTemp uint8) bool {
		c := cells[int(idx)%len(cells)]
		interval := float64(rawT%20000) / 1000
		temp := 35 + float64(rawTemp%25)
		p := d.CellFailProb(c.Bit, interval, temp, 0)
		return p >= 0 && p <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 3000}); err != nil {
		t.Fatal(err)
	}
}

func TestTrueFailingSetThresholdMonotone(t *testing.T) {
	d := testDevice(t, 63, nil)
	// A laxer threshold can only grow the set.
	strict := len(d.TrueFailingSet(1.024, 45, 0, 0.5))
	lax := len(d.TrueFailingSet(1.024, 45, 0, 0.001))
	if strict > lax {
		t.Errorf("threshold monotonicity violated: %d at 0.5 vs %d at 0.001", strict, lax)
	}
}

func TestGeometryString(t *testing.T) {
	g := Geometry{Banks: 8, RowsPerBank: 64, WordsPerRow: 256}
	s := g.String()
	if s == "" {
		t.Fatal("empty geometry string")
	}
}
