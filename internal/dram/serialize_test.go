package dram

import (
	"bytes"
	"slices"
	"testing"

	"reaper/internal/checkpoint"
	"reaper/internal/patterns"
	"reaper/internal/rng"
)

// resolvePattern adapts patterns.Parse to the RowData resolver RestoreState
// expects; it is what production checkpoint plumbing passes too.
func resolvePattern(name string) (RowData, error) {
	p, err := patterns.Parse(name)
	if err != nil {
		return nil, err
	}
	return p, nil
}

// driveScript runs one deterministic mid-campaign segment against d: pattern
// writes, retention reads under varying temperature and auto-refresh, cache
// revisits, fault injections, VRT bursts, DPD rescrambles, and targeted
// row/word writes (which exercise the stuck overlay and row-deviation map).
// ops must be a dedicated stream so twin devices can be driven identically.
// Returns the concatenated fail lists of every read.
func driveScript(d *Device, ops *rng.Source, start float64) []uint64 {
	pats := []RowData{patterns.Solid1(), patterns.Checkerboard(), patterns.Random(0xD15C)}
	now := start
	var fails []uint64
	read := func() {
		now += 2.048
		fails = append(fails, d.ReadCompareAll(now)...)
	}
	// Steady cadence on one pattern: populates, then replays, a cached round.
	for i := 0; i < 3; i++ {
		d.WriteAll(pats[0], now)
		read()
	}
	// Condition churn: new patterns, temperature steps, auto-refresh toggle.
	d.SetTemperature(d.Temperature() + 10)
	d.WriteAll(pats[1], now)
	read()
	d.SetAutoRefresh(0.128)
	d.WriteAll(pats[2], now)
	read()
	d.SetAutoRefresh(0)
	// Faults mid-stream: injections, a VRT burst, a DPD rescramble.
	d.InjectWeakCells(ops, 5, 4.0, now)
	d.ForceVRTLowBurst(ops, 3, 60.0, now)
	d.RescrambleDPD(ops, 4)
	d.WriteAll(pats[0], now)
	read()
	// Targeted writes: row rewrite plus single-word pokes. These clear stuck
	// state for the touched cells and leave stale stuck-list entries behind —
	// exactly the overlay shape a checkpoint must carry.
	_ = d.WriteRow(0, 1, []uint64{^uint64(0)}, now)
	_ = d.WriteWord(0, 2, 0, 0xABCD, now)
	read()
	read() // second read without rewrite: replays the live stuck overlay
	d.WriteAll(pats[0], now)
	read()
	return fails
}

// TestDeviceStateRoundTrip is the lockstep-twin property: drive a device
// mid-campaign, checkpoint it, restore into a freshly constructed device of
// the same config, then drive original and restored through an identical
// second segment. Every read, every counter, and the final re-encoded state
// must match exactly — any drift means the codec lost state.
func TestDeviceStateRoundTrip(t *testing.T) {
	for _, tc := range []struct {
		name        string
		bankStreams bool
		workers     int
	}{
		{"dense", false, 0},
		{"banked-sharded", true, 4},
	} {
		t.Run(tc.name, func(t *testing.T) {
			cfg := Config{
				Geometry:    Geometry{Banks: 8, RowsPerBank: 64, WordsPerRow: 256},
				Vendor:      VendorB(),
				Seed:        77,
				WeakScale:   20,
				BankStreams: tc.bankStreams,
			}
			orig, err := NewDevice(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if tc.workers > 0 {
				orig.SetSweepWorkers(tc.workers)
			}
			if orig.WeakCellCount() == 0 {
				t.Fatal("degenerate test: no weak cells")
			}

			// Segment 1: reach a messy mid-campaign state.
			driveScript(orig, rng.New(0x5EC1), 0)

			enc := checkpoint.NewEncoder()
			if err := orig.EncodeState(enc); err != nil {
				t.Fatal(err)
			}
			blob := enc.Data()

			restored, err := NewDevice(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if tc.workers > 0 {
				restored.SetSweepWorkers(tc.workers)
			}
			if err := restored.RestoreState(checkpoint.NewDecoder(blob), resolvePattern); err != nil {
				t.Fatal(err)
			}

			// Restored state must re-encode byte-identically (encoding is
			// deterministic and restore is lossless).
			enc2 := checkpoint.NewEncoder()
			if err := restored.EncodeState(enc2); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(blob, enc2.Data()) {
				t.Fatalf("re-encoded state differs: %d vs %d bytes", len(blob), len(enc2.Data()))
			}

			// Segment 2: lockstep. Separate-but-identical op streams so
			// injections draw the same values on both sides.
			failsA := driveScript(orig, rng.New(0x0B5E), 30)
			failsB := driveScript(restored, rng.New(0x0B5E), 30)
			if !slices.Equal(failsA, failsB) {
				t.Fatalf("post-restore fail streams diverge: %d vs %d fails", len(failsA), len(failsB))
			}
			if orig.IndexStats() != restored.IndexStats() {
				t.Errorf("index stats diverge: %+v vs %+v", orig.IndexStats(), restored.IndexStats())
			}
			if orig.IncrStats() != restored.IncrStats() {
				t.Errorf("incremental stats diverge: %+v vs %+v", orig.IncrStats(), restored.IncrStats())
			}
			if orig.BankStats() != restored.BankStats() {
				t.Errorf("bank stats diverge: %+v vs %+v", orig.BankStats(), restored.BankStats())
			}
			ra, fa := orig.Stats()
			rb, fb := restored.Stats()
			if ra != rb || fa != fb {
				t.Errorf("device stats diverge: (%d,%d) vs (%d,%d)", ra, fa, rb, fb)
			}
			for i := range orig.weak {
				if orig.weak[i].stuck != restored.weak[i].stuck {
					t.Fatalf("cell %d (bit %d): stuck %d vs %d", i, orig.weak[i].bit,
						orig.weak[i].stuck, restored.weak[i].stuck)
				}
			}
			if orig.IncrStats().FastSweeps == 0 {
				t.Error("script never hit the round cache; test exercised nothing")
			}

			// Final states must also re-encode identically after the lockstep
			// segment (the restored device did not silently drift internally).
			encA, encB := checkpoint.NewEncoder(), checkpoint.NewEncoder()
			if err := orig.EncodeState(encA); err != nil {
				t.Fatal(err)
			}
			if err := restored.EncodeState(encB); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(encA.Data(), encB.Data()) {
				t.Fatal("final states encode differently after lockstep segment")
			}
		})
	}
}

// TestDeviceRestoreRejectsMismatch pins the in-band guards: a blob restored
// into a device with a different seed or geometry must fail loudly.
func TestDeviceRestoreRejectsMismatch(t *testing.T) {
	cfg := Config{
		Geometry:  Geometry{Banks: 2, RowsPerBank: 16, WordsPerRow: 32},
		Vendor:    VendorB(),
		Seed:      5,
		WeakScale: 20,
	}
	d, err := NewDevice(cfg)
	if err != nil {
		t.Fatal(err)
	}
	enc := checkpoint.NewEncoder()
	if err := d.EncodeState(enc); err != nil {
		t.Fatal(err)
	}

	otherSeed := cfg
	otherSeed.Seed = 6
	ds, err := NewDevice(otherSeed)
	if err != nil {
		t.Fatal(err)
	}
	if err := ds.RestoreState(checkpoint.NewDecoder(enc.Data()), resolvePattern); err == nil {
		t.Error("seed mismatch not rejected")
	}

	otherGeom := cfg
	otherGeom.Geometry.Banks = 4
	dg, err := NewDevice(otherGeom)
	if err != nil {
		t.Fatal(err)
	}
	if err := dg.RestoreState(checkpoint.NewDecoder(enc.Data()), resolvePattern); err == nil {
		t.Error("geometry mismatch not rejected")
	}
}

// TestDeviceRestoreTruncated makes sure a truncated blob surfaces a decode
// error instead of panicking or silently succeeding.
func TestDeviceRestoreTruncated(t *testing.T) {
	cfg := Config{
		Geometry:  Geometry{Banks: 2, RowsPerBank: 16, WordsPerRow: 32},
		Vendor:    VendorB(),
		Seed:      5,
		WeakScale: 20,
	}
	d, err := NewDevice(cfg)
	if err != nil {
		t.Fatal(err)
	}
	driveScript(d, rng.New(1), 0)
	enc := checkpoint.NewEncoder()
	if err := d.EncodeState(enc); err != nil {
		t.Fatal(err)
	}
	blob := enc.Data()
	for _, cut := range []int{0, 1, 8, len(blob) / 2, len(blob) - 1} {
		fresh, err := NewDevice(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := fresh.RestoreState(checkpoint.NewDecoder(blob[:cut]), resolvePattern); err == nil {
			t.Errorf("truncation at %d not detected", cut)
		}
	}
}
