package dram

import "fmt"

// VendorParams is the per-vendor calibration of the retention model. The
// three vendor profiles below are fit to the quantities the paper publishes;
// where the paper gives only a figure without legible constants, the values
// are chosen to reproduce the figure's reported shape (see EXPERIMENTS.md).
type VendorParams struct {
	// Name identifies the vendor ("A", "B", "C").
	Name string

	// TempCoeff is the exponential temperature coefficient of the failure
	// rate (Equation 1): R ∝ exp(TempCoeff * ΔT). The paper measures
	// 0.22 / 0.20 / 0.26 per °C for vendors A / B / C, i.e. roughly 10x
	// more failures per +10°C.
	TempCoeff float64

	// BERAt1024ms is the raw bit error rate at a 1024 ms refresh interval
	// and 45°C. The paper's Section 6.2.3 example observes 2464 failing
	// cells in a 2GB module at these conditions, i.e. BER ≈ 1.43e-7.
	BERAt1024ms float64

	// BERExponent is the power-law exponent β of BER(t) ∝ t^β (Figure 2's
	// log-BER-vs-interval slope).
	BERExponent float64

	// SigmaLogMedianMS and SigmaLogSigma parameterize the lognormal
	// distribution of per-cell CDF standard deviations at the reference
	// temperature (Figure 6b: "majority of cells have a standard deviation
	// of less than 200ms" at 40°C). SigmaLogMedianMS is the median in
	// milliseconds.
	SigmaLogMedianMS float64
	SigmaLogSigma    float64

	// VRTFraction is the fraction of weak cells that exhibit variable
	// retention time (the paper excludes "~2% of all cells" as VRT in the
	// Figure 6 analysis).
	VRTFraction float64

	// VRTRatePer2GBAt1024 anchors the steady-state new-failure accumulation
	// rate: cells per hour per 2GB of capacity at a 1024 ms interval and
	// 45°C. The paper's Section 6.2.3 example measures A = 0.73 cells/hour
	// for a 2GB module at 1024 ms.
	VRTRatePer2GBAt1024 float64

	// VRTRateExponent is the power-law exponent b of the accumulation rate
	// versus refresh interval (Figure 4: y = a*x^b).
	VRTRateExponent float64

	// VRTDwellLowHours / VRTDwellHighHours are the mean dwell times of the
	// memoryless VRT process in the low- and high-retention states.
	VRTDwellLowHours  float64
	VRTDwellHighHours float64

	// DPDStrength bounds the per-cell data-pattern-dependent retention
	// shift: a cell's worst-case retention mean is lengthened by a factor
	// in [1, 1+2*DPDStrength] depending on the stored neighbourhood data
	// (Section 2.3.2).
	DPDStrength float64
}

// Validate reports whether the parameters are physically sensible.
func (v VendorParams) Validate() error {
	switch {
	case v.TempCoeff <= 0,
		v.BERAt1024ms <= 0,
		v.BERExponent <= 0,
		v.SigmaLogMedianMS <= 0,
		v.SigmaLogSigma <= 0,
		v.VRTFraction < 0 || v.VRTFraction > 1,
		v.VRTRatePer2GBAt1024 < 0,
		v.VRTRateExponent <= 0,
		v.VRTDwellLowHours <= 0,
		v.VRTDwellHighHours <= 0,
		v.DPDStrength < 0 || v.DPDStrength >= 1:
		return fmt.Errorf("dram: invalid vendor params %+v", v)
	}
	return nil
}

// The reference conditions all vendor parameters are quoted at.
const (
	// RefTempC is the reference ambient temperature (°C) of the paper's
	// characterization (Section 4).
	RefTempC = 45.0
	// refIntervalS is the reference refresh interval (seconds) BER and VRT
	// anchors are quoted at.
	refIntervalS = 1.024
)

// VendorA, VendorB and VendorC are the three calibrated vendor profiles.
// Vendor B is the paper's "representative chip" vendor.
func VendorA() VendorParams {
	return VendorParams{
		Name:                "A",
		TempCoeff:           0.22,
		BERAt1024ms:         1.1e-7,
		BERExponent:         2.6,
		SigmaLogMedianMS:    70,
		SigmaLogSigma:       0.65,
		VRTFraction:         0.02,
		VRTRatePer2GBAt1024: 0.55,
		VRTRateExponent:     3.6,
		VRTDwellLowHours:    8,
		VRTDwellHighHours:   40,
		DPDStrength:         0.35,
	}
}

// VendorB is the paper's representative-chip vendor profile.
func VendorB() VendorParams {
	return VendorParams{
		Name:                "B",
		TempCoeff:           0.20,
		BERAt1024ms:         1.43e-7,
		BERExponent:         2.8,
		SigmaLogMedianMS:    80,
		SigmaLogSigma:       0.6,
		VRTFraction:         0.02,
		VRTRatePer2GBAt1024: 0.73,
		VRTRateExponent:     3.9,
		VRTDwellLowHours:    10,
		VRTDwellHighHours:   50,
		DPDStrength:         0.35,
	}
}

// VendorC is the most temperature-sensitive of the calibrated profiles.
func VendorC() VendorParams {
	return VendorParams{
		Name:                "C",
		TempCoeff:           0.26,
		BERAt1024ms:         1.9e-7,
		BERExponent:         3.0,
		SigmaLogMedianMS:    90,
		SigmaLogSigma:       0.55,
		VRTFraction:         0.02,
		VRTRatePer2GBAt1024: 0.95,
		VRTRateExponent:     4.2,
		VRTDwellLowHours:    12,
		VRTDwellHighHours:   60,
		DPDStrength:         0.35,
	}
}

// Vendors returns the three vendor profiles in order A, B, C.
func Vendors() []VendorParams {
	return []VendorParams{VendorA(), VendorB(), VendorC()}
}

// BER returns the model raw bit error rate at refresh interval t (seconds)
// and ambient temperature tempC (°C): the expected fraction of device bits
// that are failing at those conditions.
func (v VendorParams) BER(t, tempC float64) float64 {
	if t <= 0 {
		return 0
	}
	return v.BERAt1024ms * pow(t/refIntervalS, v.BERExponent) * exp(v.TempCoeff*(tempC-RefTempC))
}

// VRTRate returns the model steady-state new-failure accumulation rate in
// cells per hour for a device of the given capacity, at refresh interval t
// (seconds) and temperature tempC.
func (v VendorParams) VRTRate(t, tempC float64, bytes int64) float64 {
	if t <= 0 {
		return 0
	}
	per2GB := v.VRTRatePer2GBAt1024 * pow(t/refIntervalS, v.VRTRateExponent)
	return per2GB * float64(bytes) / (2 << 30) * exp(v.TempCoeff*(tempC-RefTempC))
}

// muTempScale returns the multiplicative scale applied to per-cell retention
// means (and sigmas) at ambient temperature tempC. It is derived from the
// requirement that the failing-cell count N(t) ∝ t^β scale as
// exp(TempCoeff*ΔT): scaling all means by exp(-TempCoeff/β*ΔT) achieves
// exactly that for a power-law mean distribution.
func (v VendorParams) muTempScale(tempC float64) float64 {
	return exp(-v.TempCoeff / v.BERExponent * (tempC - RefTempC))
}
