package dram

import "sort"

// This file exposes the device's latent ground truth. Real chips have no
// such interface — profiling mechanisms only ever see read/write results —
// but the reproduction needs it to *score* profilers: coverage and false
// positive rate (Section 6 of the paper) are defined against the true set of
// failing cells at the target conditions, which only the model can know.

// CellInfo describes one weak cell's latent parameters at the reference
// temperature. Used by the characterization harness to regenerate the
// paper's per-cell distribution figures (Figures 6 and 7).
type CellInfo struct {
	Bit        uint64
	Mu         float64 // seconds, at RefTempC, pattern-neutral, current VRT state
	Sigma      float64 // seconds, at RefTempC
	ChargedVal uint8
	VRT        bool
	DPDSens    float64
}

// Cells returns a snapshot of all weak cells' latent parameters at simulated
// time now (VRT cells report their current state's retention mean).
// Time arguments across Device calls must be non-decreasing.
func (d *Device) Cells(now float64) []CellInfo {
	out := make([]CellInfo, 0, len(d.weak))
	for _, c := range d.weak {
		out = append(out, CellInfo{
			Bit:        c.bit,
			Mu:         c.muAt(now),
			Sigma:      c.sigma,
			ChargedVal: c.chargedVal,
			VRT:        c.vrt != nil,
			DPDSens:    c.dpdSens,
		})
	}
	return out
}

// CellFailProb returns the probability that the cell at the given bit index
// fails a single read after tREFI seconds without refresh at ambient
// temperature tempC, under its worst-case data pattern, evaluated at
// simulated time now. Returns 0 for strong cells (bits not in the weak
// population).
func (d *Device) CellFailProb(bit uint64, tREFI, tempC, now float64) float64 {
	i := sort.Search(len(d.weak), func(i int) bool { return d.weak[i].bit >= bit })
	if i >= len(d.weak) || d.weak[i].bit != bit {
		return 0
	}
	return d.weak[i].worstCaseFailProb(tREFI, tempC, &d.vend, now)
}

// TrueFailingSet returns the ground-truth set of failing cells at the target
// conditions (refresh interval tREFI seconds, ambient temperature tempC),
// evaluated at simulated time now: every cell whose worst-case-pattern
// single-read failure probability is at least threshold. This operationalizes
// the paper's "all possible failing cells at the target refresh interval"
// (the limit of infinite brute-force iterations over all data patterns).
//
// A typical threshold is OracleThreshold.
func (d *Device) TrueFailingSet(tREFI, tempC, now, threshold float64) []uint64 {
	var out []uint64
	for _, c := range d.weak {
		if c.worstCaseFailProb(tREFI, tempC, &d.vend, now) >= threshold {
			out = append(out, c.bit)
		}
	}
	return out
}

// OracleThreshold is the default minimum single-read worst-case failure
// probability for a cell to count as a "possible failing cell" at given
// conditions. 1e-3 corresponds to a cell that would be observed at least
// once in a thousand brute-force trials.
const OracleThreshold = 1e-3
