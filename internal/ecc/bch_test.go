package ecc

import (
	"testing"
	"testing/quick"

	"reaper/internal/rng"
)

func TestBCHRoundTrip(t *testing.T) {
	f := func(data uint64) bool {
		w := EncodeBCH(data)
		got, status, fixed := DecodeBCH(w)
		return got == data && status == Clean && fixed == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestBCHCorrectsEverySingleBitFlip(t *testing.T) {
	for _, data := range []uint64{0, ^uint64(0), 0xdeadbeefcafef00d, 1, 1 << 63} {
		w := EncodeBCH(data)
		for pos := 0; pos < BCHCodedBits; pos++ {
			got, status, fixed := DecodeBCH(FlipBCHBit(w, pos))
			if status != Corrected || fixed != 1 {
				t.Fatalf("flip at %d: status %v fixed %d", pos, status, fixed)
			}
			if got != data {
				t.Fatalf("flip at %d: data %x, want %x", pos, got, data)
			}
		}
	}
}

func TestBCHCorrectsEveryDoubleBitFlip(t *testing.T) {
	data := uint64(0x0123456789abcdef)
	w := EncodeBCH(data)
	for a := 0; a < BCHCodedBits; a++ {
		for b := a + 1; b < BCHCodedBits; b++ {
			got, status, fixed := DecodeBCH(FlipBCHBit(FlipBCHBit(w, a), b))
			if status != Corrected || fixed != 2 {
				t.Fatalf("flips (%d,%d): status %v fixed %d", a, b, status, fixed)
			}
			if got != data {
				t.Fatalf("flips (%d,%d): data %x, want %x", a, b, got, data)
			}
		}
	}
}

func TestBCHTripleErrorsDoNotPanicAndAreNeverSilentlyClean(t *testing.T) {
	// With designed distance 5, three errors are beyond the guarantee:
	// the decoder may flag them or miscorrect, but it must never report
	// Clean with wrong data.
	src := rng.New(9)
	data := uint64(0x5555aaaa5555aaaa)
	w := EncodeBCH(data)
	flagged, miscorrected := 0, 0
	const trials = 2000
	for i := 0; i < trials; i++ {
		a := src.Intn(BCHCodedBits)
		b := src.Intn(BCHCodedBits)
		c := src.Intn(BCHCodedBits)
		if a == b || b == c || a == c {
			continue
		}
		got, status, _ := DecodeBCH(FlipBCHBit(FlipBCHBit(FlipBCHBit(w, a), b), c))
		switch status {
		case Clean:
			if got != data {
				t.Fatal("triple error decoded as Clean with wrong data")
			}
		case DoubleError:
			flagged++
		case Corrected:
			if got != data {
				miscorrected++
			}
		}
	}
	if flagged == 0 {
		t.Error("no triple error was ever flagged uncorrectable")
	}
	t.Logf("triple errors: %d flagged, %d miscorrected (allowed beyond d=5)", flagged, miscorrected)
}

func TestBCHCodeDistanceAtLeast5(t *testing.T) {
	// Any two distinct codewords differ in at least 5 coded bits.
	src := rng.New(10)
	dist := func(a, b BCHWord) int {
		d := 0
		for pos := 0; pos < BCHCodedBits; pos++ {
			if a.codeBit(pos) != b.codeBit(pos) {
				d++
			}
		}
		return d
	}
	for i := 0; i < 300; i++ {
		x, y := src.Uint64(), src.Uint64()
		if x == y {
			continue
		}
		if d := dist(EncodeBCH(x), EncodeBCH(y)); d < 5 {
			t.Fatalf("codewords for %x and %x at distance %d < 5", x, y, d)
		}
	}
}

func TestBCHCheckBitsStayIn14Bits(t *testing.T) {
	f := func(data uint64) bool {
		return EncodeBCH(data).Check < 1<<14
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

func TestBCHLinear(t *testing.T) {
	// BCH is linear: check(a) XOR check(b) == check(a XOR b).
	f := func(a, b uint64) bool {
		return EncodeBCH(a).Check^EncodeBCH(b).Check == EncodeBCH(a^b).Check
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

func TestFlipBCHBitPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("FlipBCHBit(78) did not panic")
		}
	}()
	FlipBCHBit(BCHWord{}, BCHCodedBits)
}

func TestBCHOverheadMatchesECC2Budget(t *testing.T) {
	// The analytic ECC-2 model budgets 16 extra bits per 64-bit word; the
	// real BCH code uses 14, so the model is (slightly conservatively)
	// consistent with a realizable code.
	if BCHCodedBits > ECC2().WordBits {
		t.Errorf("BCH word of %d bits exceeds the ECC-2 budget of %d",
			BCHCodedBits, ECC2().WordBits)
	}
}
