package ecc

import (
	"math"
	"testing"
	"testing/quick"

	"reaper/internal/rng"
)

func TestCodeValidate(t *testing.T) {
	for _, c := range StandardCodes() {
		if err := c.Validate(); err != nil {
			t.Errorf("%s invalid: %v", c.Name, err)
		}
	}
	bad := Code{K: -1, WordBits: 10, DataBits: 8}
	if err := bad.Validate(); err == nil {
		t.Error("negative K not rejected")
	}
	bad = Code{K: 0, WordBits: 8, DataBits: 16}
	if err := bad.Validate(); err == nil {
		t.Error("DataBits > WordBits not rejected")
	}
}

func TestUBERNoECCIsIdentityForSmallR(t *testing.T) {
	// With k=0 and w=64, UBER = (1/64) * P(>=1 failure) ~= R for tiny R.
	c := NoECC()
	for _, r := range []float64{1e-15, 1e-12, 1e-9} {
		u := c.UBER(r)
		if math.Abs(u/r-1) > 1e-3 {
			t.Errorf("NoECC UBER(%v) = %v, want ~%v", r, u, r)
		}
	}
}

func TestUBERSECDEDQuadratic(t *testing.T) {
	// For tiny R, SECDED UBER ~= (1/72) * C(72,2) * R^2 = 35.5 * R^2.
	c := SECDED()
	r := 1e-9
	want := 2556.0 / 72 * r * r
	got := c.UBER(r)
	if math.Abs(got/want-1) > 1e-3 {
		t.Errorf("SECDED UBER(%v) = %v, want ~%v", r, got, want)
	}
}

func TestUBEREdgeCases(t *testing.T) {
	c := SECDED()
	if c.UBER(0) != 0 || c.UBER(-1) != 0 {
		t.Error("UBER at R<=0 must be 0")
	}
	if u := c.UBER(1); u <= 0 || u > 1 {
		t.Errorf("UBER at R=1 out of range: %v", u)
	}
}

func TestUBERMonotonicInR(t *testing.T) {
	for _, c := range StandardCodes() {
		prev := 0.0
		for _, r := range []float64{1e-12, 1e-10, 1e-8, 1e-6, 1e-4, 1e-2} {
			u := c.UBER(r)
			if u < prev {
				t.Errorf("%s UBER not monotonic at R=%v", c.Name, r)
			}
			prev = u
		}
	}
}

func TestStrongerCodesTolerateMore(t *testing.T) {
	n := NoECC().TolerableRBER(UBERConsumer)
	s := SECDED().TolerableRBER(UBERConsumer)
	e := ECC2().TolerableRBER(UBERConsumer)
	if !(n < s && s < e) {
		t.Errorf("tolerable RBER not ordered: %v %v %v", n, s, e)
	}
}

func TestTable1Anchors(t *testing.T) {
	// Paper Table 1 at UBER 1e-15: No ECC tolerates RBER 1.0e-15, SECDED
	// ~3.8e-9 (we compute ~5e-9 from Eq 6 exactly; same order), ECC-2
	// ~6.9e-7 (we compute ~1e-6; same order).
	if r := NoECC().TolerableRBER(UBERConsumer); math.Abs(r/1e-15-1) > 0.05 {
		t.Errorf("NoECC tolerable RBER = %v, want ~1e-15", r)
	}
	if r := SECDED().TolerableRBER(UBERConsumer); r < 3e-9 || r > 8e-9 {
		t.Errorf("SECDED tolerable RBER = %v, want a few 1e-9", r)
	}
	if r := ECC2().TolerableRBER(UBERConsumer); r < 4e-7 || r > 2e-6 {
		t.Errorf("ECC2 tolerable RBER = %v, want high 1e-7 range", r)
	}
}

func TestTolerableRBERIsTight(t *testing.T) {
	// The solver returns the *largest* admissible R: UBER just below the
	// target at R, above it at 2R.
	for _, c := range StandardCodes() {
		r := c.TolerableRBER(UBERConsumer)
		if c.UBER(r) > UBERConsumer*1.001 {
			t.Errorf("%s UBER at solved R exceeds target: %v", c.Name, c.UBER(r))
		}
		if c.UBER(2*r) <= UBERConsumer {
			t.Errorf("%s solved R not tight: doubling it still meets the target", c.Name)
		}
	}
}

func TestTolerableRBERDegenerate(t *testing.T) {
	if SECDED().TolerableRBER(0) != 0 {
		t.Error("zero target should give zero RBER")
	}
	if SECDED().TolerableRBER(-1) != 0 {
		t.Error("negative target should give zero RBER")
	}
	// An absurdly lax target saturates at the search ceiling.
	if r := SECDED().TolerableRBER(1); r < 0.4 {
		t.Errorf("lax target RBER = %v, want ~0.5", r)
	}
}

func TestTolerableBitErrorsScalesTable1(t *testing.T) {
	// Table 1: SECDED at 2GB tolerates ~65 bit errors (paper: 65.3 with
	// their 3.8e-9 figure; ours lands in the tens).
	got := SECDED().TolerableBitErrors(UBERConsumer, 2<<30)
	if got < 40 || got > 130 {
		t.Errorf("SECDED tolerable errors at 2GB = %v, want tens", got)
	}
	// Linear scaling with capacity (paper: 8GB row is 4x the 2GB row).
	r := SECDED().TolerableBitErrors(UBERConsumer, 8<<30) / got
	if math.Abs(r-4) > 1e-6 {
		t.Errorf("capacity scaling = %v, want 4", r)
	}
	// Enterprise target is stricter.
	if SECDED().TolerableBitErrors(UBEREnterprise, 2<<30) >= got {
		t.Error("enterprise target should tolerate fewer errors")
	}
}

func TestSECDEDRoundTrip(t *testing.T) {
	f := func(data uint64) bool {
		w := EncodeSECDED(data)
		got, status, _ := DecodeSECDED(w)
		return got == data && status == Clean
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestSECDEDCorrectsEverySingleBitFlip(t *testing.T) {
	datas := []uint64{0, ^uint64(0), 0xdeadbeefcafef00d, 1, 1 << 63}
	for _, data := range datas {
		w := EncodeSECDED(data)
		for pos := 0; pos < 72; pos++ {
			corrupted := FlipBit(w, pos)
			got, status, fixed := DecodeSECDED(corrupted)
			if status != Corrected {
				t.Fatalf("flip at %d: status %v, want Corrected", pos, status)
			}
			if got != data {
				t.Fatalf("flip at %d: data %x, want %x", pos, got, data)
			}
			if fixed != pos {
				t.Fatalf("flip at %d reported as %d", pos, fixed)
			}
		}
	}
}

func TestSECDEDDetectsEveryDoubleBitFlip(t *testing.T) {
	data := uint64(0x0123456789abcdef)
	w := EncodeSECDED(data)
	for a := 0; a < 72; a++ {
		for b := a + 1; b < 72; b++ {
			corrupted := FlipBit(FlipBit(w, a), b)
			_, status, _ := DecodeSECDED(corrupted)
			if status != DoubleError {
				t.Fatalf("flips at (%d,%d): status %v, want DoubleError", a, b, status)
			}
		}
	}
}

func TestSECDEDCodeDistance(t *testing.T) {
	// SECDED codewords must be at Hamming distance >= 4 from each other;
	// spot-check random pairs.
	src := rng.New(3)
	for i := 0; i < 500; i++ {
		a := src.Uint64()
		b := src.Uint64()
		if a == b {
			continue
		}
		d := HammingDistance(EncodeSECDED(a), EncodeSECDED(b))
		if d < 4 {
			t.Fatalf("codewords for %x and %x at distance %d < 4", a, b, d)
		}
	}
}

func TestFlipBitPanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("FlipBit(-1) did not panic")
		}
	}()
	FlipBit(Word72{}, -1)
}

func TestDecodeStatusString(t *testing.T) {
	if Clean.String() != "clean" || Corrected.String() != "corrected" ||
		DoubleError.String() != "double-error" {
		t.Error("DecodeStatus strings wrong")
	}
	if DecodeStatus(42).String() == "" {
		t.Error("unknown status should still render")
	}
}
