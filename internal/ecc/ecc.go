// Package ecc implements the error-correction analysis of the paper's
// Section 6.2.2 — the uncorrectable-bit-error-rate (UBER) model of
// Equations 2–6, the tolerable-RBER solver behind Table 1 — and a working
// Hamming SECDED(72,64) codec as a concrete substrate for ECC-based
// retention-failure mitigation.
//
// The analytic model treats DRAM retention failures as independent and
// uniformly distributed (as the paper assumes, citing prior validation), so
// the number of failing bits in a w-bit ECC word is Binomial(w, R) where R
// is the raw bit error rate. A k-bit-correcting code leaves an uncorrectable
// error whenever more than k bits fail:
//
//	UBER = (1/w) * sum_{n=k+1}^{w} C(w,n) R^n (1-R)^(w-n)
package ecc

import (
	"fmt"
	"math"
	"math/bits"

	"reaper/internal/stats"
)

// Code describes a k-bit-correcting ECC operating on w-bit words.
type Code struct {
	// Name is a display label ("No ECC", "SECDED", "ECC-2").
	Name string
	// K is the number of correctable bit errors per word.
	K int
	// WordBits is the total ECC word size w, data plus check bits.
	WordBits int
	// DataBits is the data payload per word.
	DataBits int
}

// NoECC is the k=0 baseline: a bare 64-bit data word.
func NoECC() Code { return Code{Name: "No ECC", K: 0, WordBits: 64, DataBits: 64} }

// SECDED is single-error-correcting, double-error-detecting Hamming over a
// 72-bit word holding 64 data bits (the paper's k=1 case: "8 additional bits
// per 64-bit data word").
func SECDED() Code { return Code{Name: "SECDED", K: 1, WordBits: 72, DataBits: 64} }

// ECC2 corrects two bit errors per word using 16 additional bits per 64-bit
// data word (the paper's k=2 case).
func ECC2() Code { return Code{Name: "ECC-2", K: 2, WordBits: 80, DataBits: 64} }

// StandardCodes returns the three ECC strengths of the paper's Table 1.
func StandardCodes() []Code { return []Code{NoECC(), SECDED(), ECC2()} }

// Validate reports whether the code parameters are consistent.
func (c Code) Validate() error {
	if c.K < 0 || c.WordBits <= 0 || c.DataBits <= 0 || c.DataBits > c.WordBits {
		return fmt.Errorf("ecc: invalid code %+v", c)
	}
	return nil
}

// UBER returns the uncorrectable bit error rate for the code at raw bit
// error rate rber (Equation 6).
func (c Code) UBER(rber float64) float64 {
	if rber <= 0 {
		return 0
	}
	if rber >= 1 {
		return 1.0 / float64(c.WordBits)
	}
	return stats.BinomialTail(c.WordBits, c.K, rber) / float64(c.WordBits)
}

// TolerableRBER returns the largest raw bit error rate at which the code
// still meets the target UBER, found by bisection in log space. Typical
// targets are UBERConsumer and UBEREnterprise.
func (c Code) TolerableRBER(targetUBER float64) float64 {
	if targetUBER <= 0 {
		return 0
	}
	lo, hi := math.Log(1e-20), math.Log(0.5)
	if c.UBER(math.Exp(lo)) > targetUBER {
		return 0
	}
	if c.UBER(math.Exp(hi)) <= targetUBER {
		return math.Exp(hi)
	}
	for i := 0; i < 200; i++ {
		mid := (lo + hi) / 2
		if c.UBER(math.Exp(mid)) <= targetUBER {
			lo = mid
		} else {
			hi = mid
		}
	}
	return math.Exp(lo)
}

// Target UBERs from the paper's definition of system failure.
const (
	// UBERConsumer is the consumer-application failure threshold (1e-15).
	UBERConsumer = 1e-15
	// UBEREnterprise is the enterprise-application threshold (1e-17).
	UBEREnterprise = 1e-17
)

// TolerableBitErrors returns the expected number of failing cells a device
// of the given byte capacity can carry while the code still meets the target
// UBER — the paper's Table 1 rows.
func (c Code) TolerableBitErrors(targetUBER float64, bytes int64) float64 {
	return c.TolerableRBER(targetUBER) * float64(bytes) * 8
}

// ---------------------------------------------------------------------------
// Working Hamming SECDED(72,64) codec.
// ---------------------------------------------------------------------------

// Word72 is one encoded SECDED word: 64 data bits plus 8 check bits.
type Word72 struct {
	Data  uint64
	Check uint8
}

// DecodeStatus classifies the outcome of decoding a Word72.
type DecodeStatus int

const (
	// Clean: no error detected.
	Clean DecodeStatus = iota
	// Corrected: a single-bit error was detected and corrected.
	Corrected
	// DoubleError: two bit errors were detected; the data is not
	// trustworthy and cannot be corrected.
	DoubleError
)

// String names the decode status for logs and reports.
func (s DecodeStatus) String() string {
	switch s {
	case Clean:
		return "clean"
	case Corrected:
		return "corrected"
	case DoubleError:
		return "double-error"
	default:
		return fmt.Sprintf("DecodeStatus(%d)", int(s))
	}
}

// Bit layout: positions 1..71 hold the Hamming code; positions that are
// powers of two (1,2,4,8,16,32,64) are the 7 Hamming parity bits, the other
// 64 positions hold data bits in ascending order; position 0 holds the
// overall parity bit that upgrades SEC to SECDED.

// dataPositions lists the 64 non-parity positions in 1..71.
var dataPositions = func() [64]int {
	var out [64]int
	i := 0
	for pos := 1; pos < 72; pos++ {
		if pos&(pos-1) != 0 { // not a power of two
			out[i] = pos
			i++
		}
	}
	return out
}()

// EncodeSECDED encodes 64 data bits into a SECDED(72,64) word.
func EncodeSECDED(data uint64) Word72 {
	var word [72]bool
	for i, pos := range dataPositions {
		word[pos] = data>>uint(i)&1 == 1
	}
	// Hamming parity bits: parity bit at position 2^j covers every position
	// with bit j set.
	for j := 0; j < 7; j++ {
		p := false
		for pos := 1; pos < 72; pos++ {
			if pos&(1<<j) != 0 && pos&(pos-1) != 0 && word[pos] {
				p = !p
			}
		}
		word[1<<j] = p
	}
	// Overall parity over positions 1..71 stored at position 0.
	overall := false
	for pos := 1; pos < 72; pos++ {
		if word[pos] {
			overall = !overall
		}
	}
	word[0] = overall
	return packWord(word)
}

// DecodeSECDED decodes a (possibly corrupted) SECDED word, returning the
// best-effort data, the decode status, and for Corrected the flipped
// position (0..71) in the encoded word.
func DecodeSECDED(w Word72) (data uint64, status DecodeStatus, fixedPos int) {
	word := unpackWord(w)
	syndrome := 0
	for pos := 1; pos < 72; pos++ {
		if word[pos] {
			syndrome ^= pos
		}
	}
	overall := word[0]
	for pos := 1; pos < 72; pos++ {
		if word[pos] {
			overall = !overall
		}
	}
	// overall is now the parity of all 72 bits: false means parity checks.
	parityOK := !overall

	switch {
	case syndrome == 0 && parityOK:
		return extractData(word), Clean, -1
	case syndrome == 0 && !parityOK:
		// The overall parity bit itself flipped; data is intact.
		word[0] = !word[0]
		return extractData(word), Corrected, 0
	case syndrome != 0 && !parityOK:
		if syndrome < 72 {
			word[syndrome] = !word[syndrome]
			return extractData(word), Corrected, syndrome
		}
		// Syndrome points outside the word: multi-bit corruption.
		return extractData(word), DoubleError, -1
	default: // syndrome != 0 && parityOK
		return extractData(word), DoubleError, -1
	}
}

func extractData(word [72]bool) uint64 {
	var data uint64
	for i, pos := range dataPositions {
		if word[pos] {
			data |= 1 << uint(i)
		}
	}
	return data
}

func packWord(word [72]bool) Word72 {
	var out Word72
	for i, pos := range dataPositions {
		if word[pos] {
			out.Data |= 1 << uint(i)
		}
	}
	checkPositions := [8]int{0, 1, 2, 4, 8, 16, 32, 64}
	for i, pos := range checkPositions {
		if word[pos] {
			out.Check |= 1 << uint(i)
		}
	}
	return out
}

func unpackWord(w Word72) [72]bool {
	var word [72]bool
	for i, pos := range dataPositions {
		word[pos] = w.Data>>uint(i)&1 == 1
	}
	checkPositions := [8]int{0, 1, 2, 4, 8, 16, 32, 64}
	for i, pos := range checkPositions {
		word[pos] = w.Check>>uint(i)&1 == 1
	}
	return word
}

// FlipBit returns a copy of w with the given encoded-word position (0..71)
// flipped. Positions follow the internal layout: 0 is the overall parity
// bit, powers of two are Hamming parity bits, the rest are data bits.
func FlipBit(w Word72, pos int) Word72 {
	if pos < 0 || pos >= 72 {
		//lint:ignore no-panic fault-injection API precondition, asserted by tests (ecc_test.go)
		panic("ecc: FlipBit position out of range")
	}
	word := unpackWord(w)
	word[pos] = !word[pos]
	return packWord(word)
}

// HammingDistance returns the number of differing bits between two encoded
// words.
func HammingDistance(a, b Word72) int {
	return bits.OnesCount64(a.Data^b.Data) + bits.OnesCount8(a.Check^b.Check)
}
