package ecc

// This file implements a working double-error-correcting binary BCH code —
// the concrete codec behind the paper's "ECC-2" strength (Table 1). The
// code is the narrow-sense BCH(127, 113, d=5) over GF(2^7), shortened to
// protect one 64-bit data word with 14 check bits (78 coded bits, within
// the 80-bit ECC word the analytic model budgets for ECC-2).
//
// Layout of the length-127 codeword (positions are polynomial degrees):
//
//	positions 0..13    check bits (remainder of x^14 d(x) mod g(x))
//	positions 14..77   the 64 data bits
//	positions 78..126  shortened away (always zero, never transmitted)
//
// Decoding uses Peterson's direct solution for t=2 plus a Chien search.

// gfOrder is the multiplicative order of GF(2^7).
const gfOrder = 127

// bchN and bchDataLo/bchDataHi delimit the shortened code.
const (
	bchCheckBits = 14
	bchDataBits  = 64
	bchBits      = bchCheckBits + bchDataBits // 78 used positions
)

// gfExp and gfLog are the antilog/log tables for GF(2^7) with primitive
// polynomial x^7 + x^3 + 1.
var gfExp [2 * gfOrder]byte
var gfLog [gfOrder + 1]int

// bchGen is the generator polynomial g(x) = m1(x)*m3(x), degree 14, as a
// bit mask (bit i = coefficient of x^i).
var bchGen uint32

func init() {
	// Build the field tables.
	const primPoly = 0x89 // x^7 + x^3 + 1
	x := byte(1)
	for i := 0; i < gfOrder; i++ {
		gfExp[i] = x
		gfExp[i+gfOrder] = x
		gfLog[x] = i
		hi := x&0x40 != 0
		x <<= 1
		if hi {
			x ^= primPoly
		}
		x &= 0x7f
	}

	// Build g(x) = lcm(m1, m3): multiply (x - α^j) over the conjugacy
	// classes of α and α^3.
	poly := []byte{1} // coefficients in GF(2^7), index = degree
	mulRoot := func(root byte) {
		next := make([]byte, len(poly)+1)
		for d, c := range poly {
			if c == 0 {
				continue
			}
			next[d+1] ^= c
			next[d] ^= gfMul(c, root)
		}
		poly = next
	}
	seen := map[int]bool{}
	for _, base := range []int{1, 3} {
		e := base
		for !seen[e] {
			seen[e] = true
			mulRoot(gfExp[e])
			e = e * 2 % gfOrder
		}
	}
	// The product of full conjugacy classes has GF(2) coefficients.
	for d, c := range poly {
		switch c {
		case 0:
		case 1:
			bchGen |= 1 << uint(d)
		default:
			//lint:ignore no-panic init-time self-check of a compile-time constant polynomial
			panic("ecc: BCH generator polynomial not over GF(2)")
		}
	}
	if bchGen>>bchCheckBits != 1 {
		//lint:ignore no-panic init-time self-check of a compile-time constant polynomial
		panic("ecc: BCH generator degree != 14")
	}
}

func gfMul(a, b byte) byte {
	if a == 0 || b == 0 {
		return 0
	}
	return gfExp[gfLog[a]+gfLog[b]]
}

func gfInv(a byte) byte {
	if a == 0 {
		//lint:ignore no-panic GF(2^8) has no inverse of zero; reaching here is a codec bug, not an input error
		panic("ecc: inverse of zero")
	}
	return gfExp[gfOrder-gfLog[a]]
}

func gfPow(a byte, n int) byte {
	if a == 0 {
		return 0
	}
	return gfExp[gfLog[a]*n%gfOrder]
}

// BCHWord is one encoded ECC-2 word: 64 data bits plus 14 check bits.
type BCHWord struct {
	Data  uint64
	Check uint16 // low 14 bits used
}

// codeBit returns the codeword bit at position pos (0..77).
func (w BCHWord) codeBit(pos int) byte {
	if pos < bchCheckBits {
		return byte(w.Check >> uint(pos) & 1)
	}
	return byte(w.Data >> uint(pos-bchCheckBits) & 1)
}

func (w *BCHWord) flip(pos int) {
	if pos < bchCheckBits {
		w.Check ^= 1 << uint(pos)
	} else {
		w.Data ^= 1 << uint(pos-bchCheckBits)
	}
}

// EncodeBCH encodes 64 data bits into a shortened BCH(78, 64, d=5) word
// that corrects any two bit errors.
func EncodeBCH(data uint64) BCHWord {
	// Systematic encoding: remainder of x^14 * d(x) divided by g(x),
	// computed bit-serially from the highest data degree down.
	var rem uint32 // 14-bit LFSR state, bit i = coefficient of x^i
	for i := bchDataBits - 1; i >= 0; i-- {
		fb := byte(rem>>uint(bchCheckBits-1)&1) ^ byte(data>>uint(i)&1)
		rem = (rem << 1) & ((1 << bchCheckBits) - 1)
		if fb == 1 {
			rem ^= bchGen & ((1 << bchCheckBits) - 1)
		}
	}
	return BCHWord{Data: data, Check: uint16(rem)}
}

// syndrome evaluates r(α^j).
func bchSyndrome(w BCHWord, j int) byte {
	var s byte
	for pos := 0; pos < bchBits; pos++ {
		if w.codeBit(pos) == 1 {
			s ^= gfExp[pos*j%gfOrder]
		}
	}
	return s
}

// DecodeBCH decodes a possibly corrupted word. It returns the best-effort
// data, the decode status (Clean, Corrected for 1-2 repaired bits, or
// DoubleError when the error is uncorrectable), and the number of bits
// repaired.
func DecodeBCH(w BCHWord) (data uint64, status DecodeStatus, fixed int) {
	s1 := bchSyndrome(w, 1)
	s3 := bchSyndrome(w, 3)
	if s1 == 0 && s3 == 0 {
		return w.Data, Clean, 0
	}
	if s1 != 0 {
		// Single-error hypothesis: error at position log(s1) iff
		// s3 == s1^3.
		if s3 == gfPow(s1, 3) {
			pos := gfLog[s1]
			if pos >= bchBits {
				return w.Data, DoubleError, 0
			}
			w.flip(pos)
			return w.Data, Corrected, 1
		}
		// Double-error hypothesis (Peterson, t=2): the error locator is
		// sigma(x) = 1 + s1*x + (s3/s1 + s1^2)*x^2.
		sigma1 := s1
		sigma2 := gfMul(s3, gfInv(s1)) ^ gfPow(s1, 2)
		// Chien search over the used positions: position i is in error
		// iff sigma(α^-i) == 0.
		var roots []int
		for i := 0; i < bchBits && len(roots) <= 2; i++ {
			xinv := gfExp[(gfOrder-i)%gfOrder] // α^-i
			v := byte(1) ^ gfMul(sigma1, xinv) ^ gfMul(sigma2, gfMul(xinv, xinv))
			if v == 0 {
				roots = append(roots, i)
			}
		}
		if len(roots) == 2 {
			w.flip(roots[0])
			w.flip(roots[1])
			return w.Data, Corrected, 2
		}
	}
	// s1 == 0 with s3 != 0, or no consistent locator: >= 3 errors.
	return w.Data, DoubleError, 0
}

// FlipBCHBit returns a copy of w with the given coded-bit position (0..77)
// flipped: positions 0-13 are check bits, 14-77 are data bits.
func FlipBCHBit(w BCHWord, pos int) BCHWord {
	if pos < 0 || pos >= bchBits {
		//lint:ignore no-panic fault-injection API precondition, asserted by tests (bch_test.go)
		panic("ecc: FlipBCHBit position out of range")
	}
	w.flip(pos)
	return w
}

// BCHCodedBits is the number of transmitted bits per ECC-2 word.
const BCHCodedBits = bchBits
