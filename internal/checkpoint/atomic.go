package checkpoint

import (
	"fmt"
	"os"
	"path/filepath"
)

// WriteFileAtomic writes data to path so that the file is either absent/old
// or complete/new, never half-written: the bytes go to a temporary file in
// the same directory, are flushed to stable storage, and are then renamed
// over the destination (rename within a directory is atomic on POSIX).
//
// Every campaign artifact in this repository — reports, metrics, traces,
// checkpoints — must be written through this function (enforced by the
// reaperlint artifact-write rule), so a crash mid-write can never leave a
// truncated report that a later tool would misread as a short campaign.
func WriteFileAtomic(path string, data []byte, perm os.FileMode) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, "."+filepath.Base(path)+".tmp*")
	if err != nil {
		return fmt.Errorf("checkpoint: atomic write %s: %w", path, err)
	}
	tmpName := tmp.Name()
	defer os.Remove(tmpName) // no-op after a successful rename
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return fmt.Errorf("checkpoint: atomic write %s: %w", path, err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("checkpoint: atomic write %s: sync: %w", path, err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("checkpoint: atomic write %s: close: %w", path, err)
	}
	if err := os.Chmod(tmpName, perm); err != nil {
		return fmt.Errorf("checkpoint: atomic write %s: chmod: %w", path, err)
	}
	if err := os.Rename(tmpName, path); err != nil {
		return fmt.Errorf("checkpoint: atomic write %s: rename: %w", path, err)
	}
	return nil
}
