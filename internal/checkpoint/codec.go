// Package checkpoint provides crash-safe persistence for long-running
// campaign state: a compact little-endian binary codec for simulator state
// blobs, an atomic temp-write+rename file writer, and a checksummed
// two-generation manifest store. Together they give cmd/soak the property
// the multi-week campaigns need: a run killed at any window boundary and
// resumed from its checkpoint directory produces byte-identical final
// reports versus an uninterrupted run.
//
// The codec is deliberately dumb: fixed-width little-endian words with
// length-prefixed byte strings and explicit section tags. Floats travel as
// IEEE-754 bit patterns, so +Inf sentinels (the fault injector's "event
// channel disabled" markers) and negative zeros survive exactly — JSON
// cannot represent them. Decoders carry a sticky error: after the first
// failure every subsequent read returns a zero value, so restore code can
// read an entire structure and check Err() once at the end.
package checkpoint

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Encoder builds a state blob. The zero value is ready to use.
type Encoder struct {
	buf []byte
}

// NewEncoder returns an empty encoder.
func NewEncoder() *Encoder { return &Encoder{} }

// Data returns the encoded bytes accumulated so far.
func (e *Encoder) Data() []byte { return e.buf }

// U64 appends a fixed-width little-endian uint64.
func (e *Encoder) U64(v uint64) {
	e.buf = binary.LittleEndian.AppendUint64(e.buf, v)
}

// I64 appends a signed 64-bit integer.
func (e *Encoder) I64(v int64) { e.U64(uint64(v)) }

// Int appends an int (as a signed 64-bit integer).
func (e *Encoder) Int(v int) { e.I64(int64(v)) }

// F64 appends a float64 as its IEEE-754 bit pattern, preserving infinities,
// NaN payloads and signed zeros exactly.
func (e *Encoder) F64(v float64) { e.U64(math.Float64bits(v)) }

// Bool appends a boolean as one byte.
func (e *Encoder) Bool(v bool) {
	if v {
		e.buf = append(e.buf, 1)
	} else {
		e.buf = append(e.buf, 0)
	}
}

// Byte appends one raw byte.
func (e *Encoder) Byte(v uint8) { e.buf = append(e.buf, v) }

// Bytes appends a length-prefixed byte string.
func (e *Encoder) Bytes(b []byte) {
	e.U64(uint64(len(b)))
	e.buf = append(e.buf, b...)
}

// Str appends a length-prefixed string.
func (e *Encoder) Str(s string) { e.Bytes([]byte(s)) }

// Len appends a collection length.
func (e *Encoder) Len(n int) { e.U64(uint64(n)) }

// UVar appends an unsigned base-128 varint. Delta-style codecs use it for
// cell indices and small counters, where fixed-width words would multiply
// the blob size by ~8 for values that are almost always tiny.
func (e *Encoder) UVar(v uint64) {
	e.buf = binary.AppendUvarint(e.buf, v)
}

// SVar appends a signed zigzag varint (small magnitudes of either sign stay
// one byte; -1 sentinels cost one byte instead of eight).
func (e *Encoder) SVar(v int64) {
	e.buf = binary.AppendVarint(e.buf, v)
}

// VarLen appends a collection length as a varint.
func (e *Encoder) VarLen(n int) { e.UVar(uint64(n)) }

// Section appends a tag marking the start of a named sub-structure. The
// matching Decoder.Section verifies the tag, turning most misalignment bugs
// and silent corruption into immediate, located decode errors.
func (e *Encoder) Section(tag string) { e.Str(tag) }

// Decoder reads a state blob produced by Encoder. The first failed read
// latches an error; all subsequent reads return zero values, so callers can
// decode a whole structure and check Err once.
type Decoder struct {
	buf []byte
	off int
	err error
}

// NewDecoder returns a decoder over b.
func NewDecoder(b []byte) *Decoder { return &Decoder{buf: b} }

// Err returns the first decode error, or nil.
func (d *Decoder) Err() error { return d.err }

// Remaining returns the number of unread bytes.
func (d *Decoder) Remaining() int { return len(d.buf) - d.off }

func (d *Decoder) fail(format string, args ...any) {
	if d.err == nil {
		d.err = fmt.Errorf("checkpoint: offset %d: %s", d.off, fmt.Sprintf(format, args...))
	}
}

// U64 reads a fixed-width little-endian uint64.
func (d *Decoder) U64() uint64 {
	if d.err != nil {
		return 0
	}
	if d.off+8 > len(d.buf) {
		d.fail("truncated u64 (%d bytes left)", len(d.buf)-d.off)
		return 0
	}
	v := binary.LittleEndian.Uint64(d.buf[d.off:])
	d.off += 8
	return v
}

// I64 reads a signed 64-bit integer.
func (d *Decoder) I64() int64 { return int64(d.U64()) }

// Int reads an int.
func (d *Decoder) Int() int { return int(d.I64()) }

// F64 reads a float64 bit pattern.
func (d *Decoder) F64() float64 { return math.Float64frombits(d.U64()) }

// Bool reads a one-byte boolean.
func (d *Decoder) Bool() bool { return d.Byte() != 0 }

// Byte reads one raw byte.
func (d *Decoder) Byte() uint8 {
	if d.err != nil {
		return 0
	}
	if d.off >= len(d.buf) {
		d.fail("truncated byte")
		return 0
	}
	v := d.buf[d.off]
	d.off++
	return v
}

// Bytes reads a length-prefixed byte string. The returned slice aliases the
// decoder's buffer.
func (d *Decoder) Bytes() []byte {
	n := d.U64()
	if d.err != nil {
		return nil
	}
	if n > uint64(len(d.buf)-d.off) {
		d.fail("byte string claims %d bytes, %d left", n, len(d.buf)-d.off)
		return nil
	}
	b := d.buf[d.off : d.off+int(n)]
	d.off += int(n)
	return b
}

// Str reads a length-prefixed string.
func (d *Decoder) Str() string { return string(d.Bytes()) }

// Len reads a collection length and validates it against max (a sanity
// ceiling chosen by the caller; lengths beyond it indicate corruption).
func (d *Decoder) Len(max int) int {
	n := d.U64()
	if d.err != nil {
		return 0
	}
	if n > uint64(max) {
		d.fail("length %d exceeds sanity bound %d", n, max)
		return 0
	}
	return int(n)
}

// UVar reads an unsigned base-128 varint.
func (d *Decoder) UVar() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.buf[d.off:])
	if n <= 0 {
		d.fail("truncated or overlong uvarint")
		return 0
	}
	d.off += n
	return v
}

// SVar reads a signed zigzag varint.
func (d *Decoder) SVar() int64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.buf[d.off:])
	if n <= 0 {
		d.fail("truncated or overlong varint")
		return 0
	}
	d.off += n
	return v
}

// VarLen reads a varint collection length and validates it against max.
func (d *Decoder) VarLen(max int) int {
	n := d.UVar()
	if d.err != nil {
		return 0
	}
	if n > uint64(max) {
		d.fail("length %d exceeds sanity bound %d", n, max)
		return 0
	}
	return int(n)
}

// Section reads a tag and verifies it matches want, anchoring decode errors
// to the sub-structure where the stream first went wrong.
func (d *Decoder) Section(want string) {
	got := d.Str()
	if d.err == nil && got != want {
		d.fail("section tag %q, want %q", got, want)
	}
}
