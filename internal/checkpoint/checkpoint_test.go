package checkpoint

import (
	"bytes"
	"errors"
	"math"
	"os"
	"path/filepath"
	"testing"

	"reaper/internal/rng"
)

func TestCodecRoundTrip(t *testing.T) {
	e := NewEncoder()
	e.Section("hdr")
	e.U64(0)
	e.U64(math.MaxUint64)
	e.I64(-42)
	e.Int(7)
	e.F64(math.Inf(1))
	e.F64(math.Inf(-1))
	e.F64(math.Copysign(0, -1))
	e.F64(1.5e-300)
	e.Bool(true)
	e.Bool(false)
	e.Byte(0xAB)
	e.Bytes([]byte{1, 2, 3})
	e.Str("hello")
	e.Len(12)

	d := NewDecoder(e.Data())
	d.Section("hdr")
	if got := d.U64(); got != 0 {
		t.Errorf("U64 = %d", got)
	}
	if got := d.U64(); got != math.MaxUint64 {
		t.Errorf("U64 = %d", got)
	}
	if got := d.I64(); got != -42 {
		t.Errorf("I64 = %d", got)
	}
	if got := d.Int(); got != 7 {
		t.Errorf("Int = %d", got)
	}
	if got := d.F64(); !math.IsInf(got, 1) {
		t.Errorf("F64 = %v, want +Inf", got)
	}
	if got := d.F64(); !math.IsInf(got, -1) {
		t.Errorf("F64 = %v, want -Inf", got)
	}
	if got := d.F64(); math.Float64bits(got) != math.Float64bits(math.Copysign(0, -1)) {
		t.Errorf("F64 = %v, want -0", got)
	}
	if got := d.F64(); got != 1.5e-300 {
		t.Errorf("F64 = %v", got)
	}
	if got := d.Bool(); !got {
		t.Error("Bool = false, want true")
	}
	if got := d.Bool(); got {
		t.Error("Bool = true, want false")
	}
	if got := d.Byte(); got != 0xAB {
		t.Errorf("Byte = %#x", got)
	}
	if got := d.Bytes(); !bytes.Equal(got, []byte{1, 2, 3}) {
		t.Errorf("Bytes = %v", got)
	}
	if got := d.Str(); got != "hello" {
		t.Errorf("Str = %q", got)
	}
	if got := d.Len(100); got != 12 {
		t.Errorf("Len = %d", got)
	}
	if err := d.Err(); err != nil {
		t.Fatalf("Err = %v", err)
	}
	if d.Remaining() != 0 {
		t.Errorf("Remaining = %d", d.Remaining())
	}
}

func TestDecoderStickyError(t *testing.T) {
	e := NewEncoder()
	e.U64(1)
	d := NewDecoder(e.Data())
	d.U64()
	d.U64() // truncated: latches the error
	first := d.Err()
	if first == nil {
		t.Fatal("want truncation error")
	}
	// Every subsequent read is a zero value and the error is unchanged.
	if got := d.Str(); got != "" {
		t.Errorf("Str after error = %q", got)
	}
	if got := d.F64(); got != 0 {
		t.Errorf("F64 after error = %v", got)
	}
	if d.Err() != first {
		t.Error("error not sticky")
	}
}

func TestDecoderSectionMismatch(t *testing.T) {
	e := NewEncoder()
	e.Section("dram")
	d := NewDecoder(e.Data())
	d.Section("firmware")
	if d.Err() == nil {
		t.Fatal("want section mismatch error")
	}
}

func TestDecoderLenBound(t *testing.T) {
	e := NewEncoder()
	e.Len(1 << 40)
	d := NewDecoder(e.Data())
	if got := d.Len(1000); got != 0 || d.Err() == nil {
		t.Fatalf("Len past bound: got %d, err %v", got, d.Err())
	}
}

func TestWriteFileAtomic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "report.json")
	if err := WriteFileAtomic(path, []byte("v1"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := WriteFileAtomic(path, []byte("v2"), 0o644); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "v2" {
		t.Errorf("content = %q", data)
	}
	// No temp litter left behind.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Errorf("directory has %d entries, want 1", len(entries))
	}
}

func snap(seq int, payload string) map[string][]byte {
	return map[string][]byte{
		"state.ckpt": []byte(payload),
	}
}

func TestStoreSaveLoadRoundTrip(t *testing.T) {
	st, err := NewStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	id := Identity([]byte("config-A"))
	if err := st.Save(1, id, snap(1, "snapshot-one")); err != nil {
		t.Fatal(err)
	}
	m, files, err := st.Load(id)
	if err != nil {
		t.Fatal(err)
	}
	if m.Seq != 1 || string(files["state.ckpt"]) != "snapshot-one" {
		t.Errorf("loaded seq %d files %q", m.Seq, files)
	}
}

func TestStoreLoadEmpty(t *testing.T) {
	st, err := NewStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := st.Load(""); !errors.Is(err, ErrNoCheckpoint) {
		t.Fatalf("err = %v, want ErrNoCheckpoint", err)
	}
}

func TestStoreIdentityMismatch(t *testing.T) {
	st, err := NewStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Save(1, Identity([]byte("config-A")), snap(1, "x")); err != nil {
		t.Fatal(err)
	}
	if _, _, err := st.Load(Identity([]byte("config-B"))); !errors.Is(err, ErrIdentityMismatch) {
		t.Fatalf("err = %v, want ErrIdentityMismatch", err)
	}
}

// TestStoreCorruptionFallback drives seed-driven truncations and bit flips
// into the newest snapshot's state file and checks every one of them is
// detected by checksum, with Load falling back to the previous generation.
func TestStoreCorruptionFallback(t *testing.T) {
	src := rng.New(0xC0442)
	for trial := 0; trial < 20; trial++ {
		dir := t.TempDir()
		st, err := NewStore(dir)
		if err != nil {
			t.Fatal(err)
		}
		id := Identity([]byte("cfg"))
		// Generation 1 (will become manifest.prev.json), then generation 2.
		if err := st.Save(1, id, map[string][]byte{"state-1.ckpt": []byte("generation-one-state")}); err != nil {
			t.Fatal(err)
		}
		if err := st.Save(2, id, map[string][]byte{"state-2.ckpt": []byte("generation-two-state")}); err != nil {
			t.Fatal(err)
		}
		victim := filepath.Join(dir, "state-2.ckpt")
		data, err := os.ReadFile(victim)
		if err != nil {
			t.Fatal(err)
		}
		if trial%2 == 0 {
			// Truncate at a seed-driven offset (possibly to zero bytes).
			cut := src.Intn(len(data))
			data = data[:cut]
		} else {
			// Flip a seed-driven bit.
			pos := src.Intn(len(data))
			data[pos] ^= 1 << uint(src.Intn(8))
		}
		if err := os.WriteFile(victim, data, 0o644); err != nil {
			t.Fatal(err)
		}
		m, files, err := st.Load(id)
		if err != nil {
			t.Fatalf("trial %d: fallback load failed: %v", trial, err)
		}
		if m.Seq != 1 || string(files["state-1.ckpt"]) != "generation-one-state" {
			t.Fatalf("trial %d: loaded seq %d, want fallback to 1", trial, m.Seq)
		}
	}
}

func TestStoreBothGenerationsCorrupt(t *testing.T) {
	dir := t.TempDir()
	st, err := NewStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	id := Identity([]byte("cfg"))
	if err := st.Save(1, id, map[string][]byte{"state-1.ckpt": []byte("one")}); err != nil {
		t.Fatal(err)
	}
	if err := st.Save(2, id, map[string][]byte{"state-2.ckpt": []byte("two")}); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"state-1.ckpt", "state-2.ckpt"} {
		if err := os.WriteFile(filepath.Join(dir, name), []byte("garbage"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	if _, _, err := st.Load(id); err == nil {
		t.Fatal("want error when both generations are corrupt")
	}
}

func TestStorePrunesStaleStateFiles(t *testing.T) {
	dir := t.TempDir()
	st, err := NewStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	id := Identity([]byte("cfg"))
	for seq := 1; seq <= 3; seq++ {
		name := map[string][]byte{
			// Unique name per generation so pruning has something to collect.
			"state-" + string(rune('0'+seq)) + ".ckpt": []byte("gen"),
		}
		if err := st.Save(seq, id, name); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := os.Stat(filepath.Join(dir, "state-1.ckpt")); !os.IsNotExist(err) {
		t.Error("state-1.ckpt not pruned after falling out of both generations")
	}
	for _, keep := range []string{"state-2.ckpt", "state-3.ckpt"} {
		if _, err := os.Stat(filepath.Join(dir, keep)); err != nil {
			t.Errorf("%s missing: %v", keep, err)
		}
	}
}

func TestStoreRejectsBadNames(t *testing.T) {
	st, err := NewStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Save(1, "id", map[string][]byte{"state.bin": nil}); err == nil {
		t.Error("want error for missing .ckpt suffix")
	}
	if err := st.Save(1, "id", map[string][]byte{"sub/state.ckpt": nil}); err == nil {
		t.Error("want error for non-base name")
	}
}
