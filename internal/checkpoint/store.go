package checkpoint

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// FormatVersion is the manifest schema version. It is bumped whenever the
// layout of any state blob changes incompatibly; a Store refuses to load a
// manifest from a different version rather than misinterpret old bytes.
const FormatVersion = 1

// ErrNoCheckpoint is returned by Load when the directory holds no manifest
// at all (a fresh campaign, or -resume pointed at the wrong directory).
var ErrNoCheckpoint = errors.New("checkpoint: no manifest found")

// ErrIdentityMismatch is returned when a valid manifest exists but was
// written by a campaign with a different configuration. Unlike corruption,
// identity mismatch does not fall back to the previous manifest: the whole
// directory belongs to a different run and resuming from it would silently
// produce a report for the wrong campaign.
var ErrIdentityMismatch = errors.New("checkpoint: manifest belongs to a different campaign configuration")

// FileEntry records one state file referenced by a manifest.
type FileEntry struct {
	// Name is the file's base name within the checkpoint directory.
	Name string `json:"name"`
	// SHA256 is the hex digest of the file's contents.
	SHA256 string `json:"sha256"`
	// Bytes is the expected file length.
	Bytes int64 `json:"bytes"`
}

// Manifest is the checkpoint directory's table of contents: which state
// files constitute one consistent snapshot, with checksums. It is the only
// JSON artifact in the format (state blobs are binary so that ±Inf and bit
//-exact floats survive).
type Manifest struct {
	// Version is the manifest schema version (FormatVersion at write time).
	Version int `json:"version"`
	// Identity fingerprints the campaign configuration (Identity of the
	// canonical config encoding); resume refuses a mismatched directory.
	Identity string `json:"identity"`
	// Seq is the checkpoint sequence number, monotonically increasing.
	Seq int `json:"seq"`
	// Files lists the snapshot's state files, sorted by name.
	Files []FileEntry `json:"files"`
}

const (
	manifestName = "manifest.json"
	prevName     = "manifest.prev.json"
	// stateSuffix marks files the store owns and may prune.
	stateSuffix = ".ckpt"
)

// Identity returns the hex SHA-256 fingerprint of a canonical configuration
// encoding, used to bind a checkpoint directory to one campaign.
func Identity(data []byte) string {
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:])
}

// Store manages a checkpoint directory: two generations of manifests
// (manifest.json and manifest.prev.json) plus the state files they
// reference. Save keeps the previous generation intact until the new one is
// fully durable, so a crash at any point leaves at least one loadable
// snapshot.
type Store struct {
	dir string
}

// NewStore opens (creating if needed) the checkpoint directory.
func NewStore(dir string) (*Store, error) {
	if dir == "" {
		return nil, errors.New("checkpoint: empty directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("checkpoint: %w", err)
	}
	return &Store{dir: dir}, nil
}

// Dir returns the directory the store manages.
func (s *Store) Dir() string { return s.dir }

// Save durably writes one snapshot: every state file (names must carry the
// stateSuffix ".ckpt"), then the manifest, rotating the prior manifest to
// manifest.prev.json first and pruning state files no longer referenced by
// either generation. Order matters: state files land before the manifest
// that references them, and the old manifest (whose files are untouched)
// survives until the new one is fully in place.
func (s *Store) Save(seq int, identity string, files map[string][]byte) error {
	names := make([]string, 0, len(files))
	for name := range files {
		names = append(names, name)
	}
	sort.Strings(names)
	m := &Manifest{Version: FormatVersion, Identity: identity, Seq: seq}
	for _, name := range names {
		if !strings.HasSuffix(name, stateSuffix) {
			return fmt.Errorf("checkpoint: state file %q must end in %s", name, stateSuffix)
		}
		if name != filepath.Base(name) {
			return fmt.Errorf("checkpoint: state file %q must be a base name", name)
		}
		data := files[name]
		if err := WriteFileAtomic(filepath.Join(s.dir, name), data, 0o644); err != nil {
			return err
		}
		sum := sha256.Sum256(data)
		m.Files = append(m.Files, FileEntry{
			Name:   name,
			SHA256: hex.EncodeToString(sum[:]),
			Bytes:  int64(len(data)),
		})
	}
	enc, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return fmt.Errorf("checkpoint: manifest: %w", err)
	}
	enc = append(enc, '\n')
	cur := filepath.Join(s.dir, manifestName)
	if _, statErr := os.Stat(cur); statErr == nil {
		if err := os.Rename(cur, filepath.Join(s.dir, prevName)); err != nil {
			return fmt.Errorf("checkpoint: rotate manifest: %w", err)
		}
	}
	if err := WriteFileAtomic(cur, enc, 0o644); err != nil {
		return err
	}
	s.prune()
	return nil
}

// prune removes state files referenced by neither manifest generation.
// Failures are ignored: pruning is garbage collection, not correctness.
func (s *Store) prune() {
	live := map[string]bool{}
	for _, name := range []string{manifestName, prevName} {
		m, err := s.readManifest(name)
		if err != nil {
			continue
		}
		for _, f := range m.Files {
			live[f.Name] = true
		}
	}
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return
	}
	for _, e := range entries {
		name := e.Name()
		if !e.IsDir() && strings.HasSuffix(name, stateSuffix) && !live[name] {
			os.Remove(filepath.Join(s.dir, name))
		}
	}
}

// readManifest parses one manifest generation without verifying its files.
func (s *Store) readManifest(name string) (*Manifest, error) {
	data, err := os.ReadFile(filepath.Join(s.dir, name))
	if err != nil {
		return nil, err
	}
	var m Manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("checkpoint: %s: %w", name, err)
	}
	return &m, nil
}

// Load returns the newest snapshot whose manifest parses and whose state
// files all verify against their recorded SHA-256 digests and lengths. A
// corrupted or truncated newest generation falls back to the previous one;
// if both generations fail, the combined errors are returned. identity, if
// non-empty, must match the manifest's recorded campaign identity —
// a mismatch is ErrIdentityMismatch and never falls back.
func (s *Store) Load(identity string) (*Manifest, map[string][]byte, error) {
	var errs []error
	sawManifest := false
	for _, name := range []string{manifestName, prevName} {
		m, err := s.readManifest(name)
		if err != nil {
			if !os.IsNotExist(err) {
				errs = append(errs, err)
			}
			continue
		}
		sawManifest = true
		if m.Version != FormatVersion {
			errs = append(errs, fmt.Errorf("checkpoint: %s: format version %d, want %d", name, m.Version, FormatVersion))
			continue
		}
		if identity != "" && m.Identity != identity {
			return nil, nil, fmt.Errorf("%w (manifest %s, campaign %s)",
				ErrIdentityMismatch, short(m.Identity), short(identity))
		}
		files, err := s.verify(m)
		if err != nil {
			errs = append(errs, fmt.Errorf("checkpoint: %s: %w", name, err))
			continue
		}
		return m, files, nil
	}
	if !sawManifest && len(errs) == 0 {
		return nil, nil, ErrNoCheckpoint
	}
	return nil, nil, fmt.Errorf("checkpoint: no loadable snapshot: %w", errors.Join(errs...))
}

// verify reads and checksums every state file of a manifest.
func (s *Store) verify(m *Manifest) (map[string][]byte, error) {
	files := make(map[string][]byte, len(m.Files))
	for _, f := range m.Files {
		data, err := os.ReadFile(filepath.Join(s.dir, f.Name))
		if err != nil {
			return nil, err
		}
		if int64(len(data)) != f.Bytes {
			return nil, fmt.Errorf("%s: %d bytes, manifest says %d (truncated?)", f.Name, len(data), f.Bytes)
		}
		sum := sha256.Sum256(data)
		if got := hex.EncodeToString(sum[:]); got != f.SHA256 {
			return nil, fmt.Errorf("%s: checksum mismatch (corrupted)", f.Name)
		}
		files[f.Name] = data
	}
	return files, nil
}

func short(id string) string {
	if len(id) > 12 {
		return id[:12]
	}
	return id
}
