// Package reaperd implements the profiling-as-a-service HTTP server: a
// long-running daemon that accepts declarative test programs
// (internal/testprog JSON), schedules them on a bounded deterministic
// executor, and serves status, results, and progress events over a small
// JSON API. cmd/reaperd is the production front-end; tests drive the same
// Handler through net/http/httptest.
//
// Determinism contract: a program's result depends only on its own bytes
// (in particular its seed) — never on the submission order, the queue
// state, or what other tenants run concurrently. Every random stream a
// program consumes is derived from its seed inside testprog.Run, so
// submitting the same program twice returns byte-identical result
// documents. Progress events (/events) are live observability and are
// excluded from that contract.
//
// Lifecycle: New builds the server, Start binds a listener (optional —
// Handler serves the same mux in-process), Serve runs the scheduler until
// ctx is cancelled, and cancellation triggers a graceful drain: new
// submissions are rejected with 503 while queued and running programs
// finish. API.md documents the wire protocol.
package reaperd

import (
	"net/http"

	"reaper/internal/parallel"
	"reaper/internal/telemetry"
)

// Config tunes a Server. The zero value is usable: it serves defaults for
// every field.
type Config struct {
	// MaxConcurrent bounds how many programs run at once; <= 0 means 2.
	MaxConcurrent int
	// QueueDepth bounds how many accepted programs may wait for the
	// executor; further submissions are rejected with 429. <= 0 means 16.
	QueueDepth int
	// JobWorkers is the worker-pool width each program runs with
	// (testprog.RunOptions.Workers); <= 0 means one worker per CPU.
	// Results are byte-identical at any width.
	JobWorkers int
	// TraceCapacity sizes each program's progress-event ring and, for
	// device programs requesting include_trace, the per-chip trace rings;
	// <= 0 means telemetry.DefaultTraceCapacity.
	TraceCapacity int
	// Telemetry receives the server's reaperd_* metrics (and the
	// testprog_* execution counters of every program it runs). Nil means a
	// fresh private registry; either way /metrics serves it.
	Telemetry *telemetry.Registry
}

// maxConcurrent resolves the configured concurrency bound.
func (c Config) maxConcurrent() int {
	if c.MaxConcurrent <= 0 {
		return 2
	}
	return c.MaxConcurrent
}

// queueDepth resolves the configured queue bound.
func (c Config) queueDepth() int {
	if c.QueueDepth <= 0 {
		return 16
	}
	return c.QueueDepth
}

// jobWorkers resolves the per-program worker-pool width.
func (c Config) jobWorkers() int {
	if c.JobWorkers <= 0 {
		return parallel.DefaultWorkers()
	}
	return c.JobWorkers
}

// New builds a server from cfg. The server does nothing until requests
// reach its Handler (or Start binds a listener) and Serve runs the
// scheduler.
func New(cfg Config) *Server {
	reg := cfg.Telemetry
	if reg == nil {
		reg = telemetry.New()
	}
	s := &Server{
		cfg:   cfg,
		reg:   reg,
		jobs:  make(map[string]*job),
		queue: make(chan *job, cfg.queueDepth()),
		mux:   http.NewServeMux(),
	}
	s.routes()
	return s
}

// Handler returns the server's HTTP handler — the full /v1 API plus
// /healthz and /metrics. It is what Start serves over TCP; tests mount it
// on an httptest.Server instead.
func (s *Server) Handler() http.Handler { return s.mux }
