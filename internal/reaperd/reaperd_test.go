package reaperd_test

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"reaper/internal/reaperd"
	"reaper/internal/telemetry"
)

// deviceProgram is a small single-chip device program that finishes in
// milliseconds.
const deviceProgram = `{
  "version": 1,
  "name": "smoke",
  "seed": 7,
  "fleet": {"bits": 1048576, "weak_scale": 40},
  "stages": [
    {"type": "write_pattern", "pattern": "checker"},
    {"type": "disable_refresh"},
    {"type": "wait", "seconds": 2},
    {"type": "enable_refresh"},
    {"type": "read_compare", "label": "after-2s"},
    {"type": "classify", "target_interval_s": 1.024, "target_temp_c": 45}
  ],
  "output": {"failing_bits": 8, "include_metrics": true}
}`

// env is one live server: HTTP via httptest, scheduler on a test
// goroutine, both torn down by t.Cleanup.
type env struct {
	t   *testing.T
	srv *reaperd.Server
	ts  *httptest.Server
}

func newEnv(t *testing.T, cfg reaperd.Config) *env {
	t.Helper()
	s := reaperd.New(cfg)
	ts := httptest.NewServer(s.Handler())
	ctx, cancel := context.WithCancel(context.Background())
	served := make(chan error, 1)
	go func() { served <- s.Serve(ctx) }()
	t.Cleanup(func() {
		cancel()
		if err := <-served; err != nil {
			t.Errorf("Serve: %v", err)
		}
		ts.Close()
	})
	return &env{t: t, srv: s, ts: ts}
}

// idleEnv is a server whose scheduler is NOT running: submissions stay
// queued, which makes queue-state tests deterministic.
func idleEnv(t *testing.T, cfg reaperd.Config) *env {
	t.Helper()
	ts := httptest.NewServer(reaperd.New(cfg).Handler())
	t.Cleanup(ts.Close)
	return &env{t: t, ts: ts}
}

func (e *env) do(method, path string, body []byte) (int, []byte) {
	e.t.Helper()
	req, err := http.NewRequest(method, e.ts.URL+path, bytes.NewReader(body))
	if err != nil {
		e.t.Fatalf("NewRequest: %v", err)
	}
	resp, err := e.ts.Client().Do(req)
	if err != nil {
		e.t.Fatalf("%s %s: %v", method, path, err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		e.t.Fatalf("read body: %v", err)
	}
	return resp.StatusCode, out
}

func (e *env) submit(program string, wantCode int) reaperd.Status {
	e.t.Helper()
	code, body := e.do(http.MethodPost, "/v1/programs", []byte(program))
	if code != wantCode {
		e.t.Fatalf("submit: code %d, want %d (body %s)", code, wantCode, body)
	}
	var st reaperd.Status
	if wantCode == http.StatusAccepted {
		if err := json.Unmarshal(body, &st); err != nil {
			e.t.Fatalf("submit response: %v", err)
		}
	}
	return st
}

// waitTerminal polls until the program leaves queued/running.
func (e *env) waitTerminal(id string) reaperd.Status {
	e.t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for {
		code, body := e.do(http.MethodGet, "/v1/programs/"+id, nil)
		if code != http.StatusOK {
			e.t.Fatalf("status: code %d (body %s)", code, body)
		}
		var st reaperd.Status
		if err := json.Unmarshal(body, &st); err != nil {
			e.t.Fatalf("status response: %v", err)
		}
		switch st.State {
		case reaperd.StateDone, reaperd.StateFailed, reaperd.StateCancelled:
			return st
		}
		if time.Now().After(deadline) {
			e.t.Fatalf("program %s stuck in %s", id, st.State)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestSubmitPollResult is the acceptance-criteria check: submit → poll →
// result round trip, and a second submission of the same program bytes
// returns a byte-identical result document.
func TestSubmitPollResult(t *testing.T) {
	e := newEnv(t, reaperd.Config{JobWorkers: 2})

	st := e.submit(deviceProgram, http.StatusAccepted)
	if st.ID == "" || st.Kind != "device" || st.Seed != 7 || st.Name != "smoke" {
		t.Fatalf("queued status: %+v", st)
	}
	if st.Total != 6 {
		t.Fatalf("total %d, want 6 (1 chip x 6 stages)", st.Total)
	}
	fin := e.waitTerminal(st.ID)
	if fin.State != reaperd.StateDone {
		t.Fatalf("final state %s (error %q)", fin.State, fin.Error)
	}
	if fin.Done != fin.Total {
		t.Fatalf("done %d != total %d", fin.Done, fin.Total)
	}
	code, first := e.do(http.MethodGet, "/v1/programs/"+st.ID+"/result", nil)
	if code != http.StatusOK {
		t.Fatalf("result: code %d", code)
	}
	if !strings.Contains(string(first), `"kind": "device"`) && !strings.Contains(string(first), `"kind":"device"`) {
		t.Fatalf("result lacks kind: %s", first)
	}

	// Same bytes, fresh submission, concurrent-tenant-independent result.
	st2 := e.submit(deviceProgram, http.StatusAccepted)
	if st2.ID == st.ID {
		t.Fatalf("IDs not unique")
	}
	fin2 := e.waitTerminal(st2.ID)
	if fin2.State != reaperd.StateDone {
		t.Fatalf("second run state %s (error %q)", fin2.State, fin2.Error)
	}
	_, second := e.do(http.MethodGet, "/v1/programs/"+st2.ID+"/result", nil)
	if !bytes.Equal(first, second) {
		t.Fatalf("same program, different result bytes:\n%s\nvs\n%s", first, second)
	}
}

// TestSubmitRejections covers the 400 paths and their error envelope.
func TestSubmitRejections(t *testing.T) {
	e := idleEnv(t, reaperd.Config{})
	for name, prog := range map[string]string{
		"not json":      "parsnips",
		"unknown stage": `{"version":1,"seed":1,"stages":[{"type":"warp_drive"}]}`,
		"unknown field": `{"version":1,"seed":1,"bogus":true,"stages":[{"type":"disable_refresh"}]}`,
	} {
		code, body := e.do(http.MethodPost, "/v1/programs", []byte(prog))
		if code != http.StatusBadRequest {
			t.Errorf("%s: code %d, want 400", name, code)
		}
		var er reaperd.ErrorResponse
		if err := json.Unmarshal(body, &er); err != nil || er.Error == "" {
			t.Errorf("%s: bad error envelope %s", name, body)
		}
	}
}

// TestUnknownProgram covers 404 on every per-program endpoint.
func TestUnknownProgram(t *testing.T) {
	e := idleEnv(t, reaperd.Config{})
	for _, req := range [][2]string{
		{http.MethodGet, "/v1/programs/p999999"},
		{http.MethodGet, "/v1/programs/p999999/result"},
		{http.MethodGet, "/v1/programs/p999999/events"},
		{http.MethodPost, "/v1/programs/p999999/cancel"},
	} {
		if code, _ := e.do(req[0], req[1], nil); code != http.StatusNotFound {
			t.Errorf("%s %s: code %d, want 404", req[0], req[1], code)
		}
	}
}

// TestQueuedLifecycle uses an idle scheduler to pin the queued-state
// behaviors: result 409, cancel-on-the-spot, queue-full 429, and listing.
func TestQueuedLifecycle(t *testing.T) {
	e := idleEnv(t, reaperd.Config{QueueDepth: 1})

	st := e.submit(deviceProgram, http.StatusAccepted)
	if st.State != reaperd.StateQueued {
		t.Fatalf("state %s, want queued", st.State)
	}
	if code, _ := e.do(http.MethodGet, "/v1/programs/"+st.ID+"/result", nil); code != http.StatusConflict {
		t.Fatalf("result of queued program: code %d, want 409", code)
	}

	// Queue depth 1 is exhausted; next submission is rejected.
	e.submit(deviceProgram, http.StatusTooManyRequests)

	code, body := e.do(http.MethodGet, "/v1/programs", nil)
	if code != http.StatusOK {
		t.Fatalf("list: code %d", code)
	}
	var list reaperd.ProgramList
	if err := json.Unmarshal(body, &list); err != nil {
		t.Fatalf("list response: %v", err)
	}
	if len(list.Programs) != 1 || list.Programs[0].ID != st.ID {
		t.Fatalf("list %+v, want just %s", list.Programs, st.ID)
	}

	// Cancel flips a queued program to cancelled immediately, idempotently.
	for i := 0; i < 2; i++ {
		code, body = e.do(http.MethodPost, "/v1/programs/"+st.ID+"/cancel", nil)
		var got reaperd.Status
		if err := json.Unmarshal(body, &got); err != nil || code != http.StatusOK {
			t.Fatalf("cancel: code %d body %s err %v", code, body, err)
		}
		if got.State != reaperd.StateCancelled {
			t.Fatalf("cancel #%d: state %s", i, got.State)
		}
	}
	if code, _ = e.do(http.MethodGet, "/v1/programs/"+st.ID+"/result", nil); code != http.StatusConflict {
		t.Fatalf("result of cancelled program: code %d, want 409", code)
	}
}

// TestDrain pins the graceful-drain semantics deterministically: with the
// scheduler not yet started, submit a program, cancel the scheduler
// context, then run Serve synchronously. It must run the already-queued
// program to completion before returning, and the server must refuse new
// work afterwards.
func TestDrain(t *testing.T) {
	s := reaperd.New(reaperd.Config{JobWorkers: 2})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	e := &env{t: t, ts: ts}

	st := e.submit(deviceProgram, http.StatusAccepted)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := s.Serve(ctx); err != nil {
		t.Fatalf("Serve during drain: %v", err)
	}

	code, body := e.do(http.MethodGet, "/v1/programs/"+st.ID, nil)
	var got reaperd.Status
	if err := json.Unmarshal(body, &got); err != nil || code != http.StatusOK {
		t.Fatalf("status after drain: code %d err %v", code, err)
	}
	if got.State != reaperd.StateDone {
		t.Fatalf("drained program state %s, want done (error %q)", got.State, got.Error)
	}
	if code, _ := e.do(http.MethodGet, "/v1/programs/"+st.ID+"/result", nil); code != http.StatusOK {
		t.Fatalf("result after drain: code %d", code)
	}

	// Intake is closed.
	e.submit(deviceProgram, http.StatusServiceUnavailable)
	code, body = e.do(http.MethodGet, "/healthz", nil)
	var h reaperd.Health
	if err := json.Unmarshal(body, &h); err != nil || code != http.StatusOK {
		t.Fatalf("healthz: code %d err %v", code, err)
	}
	if h.Status != "draining" {
		t.Fatalf("healthz status %q, want draining", h.Status)
	}
}

// TestEvents checks the JSONL progress stream: accepted/started/finished
// markers plus one progress line per (chip, stage) unit.
func TestEvents(t *testing.T) {
	e := newEnv(t, reaperd.Config{})
	st := e.submit(deviceProgram, http.StatusAccepted)
	fin := e.waitTerminal(st.ID)
	if fin.State != reaperd.StateDone {
		t.Fatalf("state %s", fin.State)
	}
	code, body := e.do(http.MethodGet, "/v1/programs/"+st.ID+"/events", nil)
	if code != http.StatusOK {
		t.Fatalf("events: code %d", code)
	}
	kinds := map[string]int{}
	sc := bufio.NewScanner(bytes.NewReader(body))
	for sc.Scan() {
		var ev telemetry.Event
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("bad event line %q: %v", sc.Text(), err)
		}
		kinds[ev.Kind]++
	}
	if kinds["accepted"] != 1 || kinds["started"] != 1 || kinds["finished"] != 1 {
		t.Fatalf("marker events: %v", kinds)
	}
	if kinds["progress"] != int(fin.Total) {
		t.Fatalf("progress events %d, want %d", kinds["progress"], fin.Total)
	}
}

// TestHealthAndMetrics checks the observability endpoints.
func TestHealthAndMetrics(t *testing.T) {
	reg := telemetry.New()
	e := newEnv(t, reaperd.Config{Telemetry: reg})
	code, body := e.do(http.MethodGet, "/healthz", nil)
	if code != http.StatusOK || !strings.Contains(string(body), `"ok"`) {
		t.Fatalf("healthz: %d %s", code, body)
	}
	st := e.submit(deviceProgram, http.StatusAccepted)
	e.waitTerminal(st.ID)
	code, body = e.do(http.MethodGet, "/metrics", nil)
	if code != http.StatusOK {
		t.Fatalf("metrics: code %d", code)
	}
	for _, want := range []string{
		"reaperd_submissions_total",
		"reaperd_programs_completed_total",
		"reaperd_http_requests_total",
		"testprog_programs_total",
	} {
		if !strings.Contains(string(body), want) {
			t.Fatalf("metrics lack %s: %s", want, body)
		}
	}
	// The shared registry handed in via Config is the one served.
	if reg.Counter("reaperd_submissions_total").Value() != 1 {
		t.Fatalf("shared registry not wired")
	}
}

// TestCancelRunning exercises the running-cancel path with a long
// campaign. Timing-tolerant: if the program finishes before the cancel
// lands, done is also accepted — the deterministic queued-cancel path is
// covered by TestQueuedLifecycle.
func TestCancelRunning(t *testing.T) {
	e := newEnv(t, reaperd.Config{JobWorkers: 2})
	soak := `{
  "version": 1,
  "seed": 9,
  "fleet": {"chips": 2, "bits": 8388608},
  "stages": [
    {"type": "soak", "hours": 96, "target_interval_s": 1.024, "controller": true}
  ],
  "output": {}
}`
	st := e.submit(soak, http.StatusAccepted)
	deadline := time.Now().Add(30 * time.Second)
	for {
		_, body := e.do(http.MethodGet, "/v1/programs/"+st.ID, nil)
		var got reaperd.Status
		if err := json.Unmarshal(body, &got); err != nil {
			t.Fatalf("status: %v", err)
		}
		if got.State != reaperd.StateQueued || time.Now().After(deadline) {
			break
		}
		time.Sleep(time.Millisecond)
	}
	if code, _ := e.do(http.MethodPost, "/v1/programs/"+st.ID+"/cancel", nil); code != http.StatusOK {
		t.Fatalf("cancel: code %d", code)
	}
	fin := e.waitTerminal(st.ID)
	if fin.State != reaperd.StateCancelled && fin.State != reaperd.StateDone {
		t.Fatalf("state after cancel: %s (error %q)", fin.State, fin.Error)
	}
	if fin.State == reaperd.StateCancelled {
		if code, _ := e.do(http.MethodGet, "/v1/programs/"+st.ID+"/result", nil); code != http.StatusConflict {
			t.Fatalf("result of cancelled program: code %d, want 409", code)
		}
	}
}

// TestStartAddrClose exercises the real TCP front-end.
func TestStartAddrClose(t *testing.T) {
	s := reaperd.New(reaperd.Config{})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if err := s.Start(ctx, "127.0.0.1:0"); err != nil {
		t.Fatalf("Start: %v", err)
	}
	addr := s.Addr()
	if addr == "" {
		t.Fatalf("Addr empty after Start")
	}
	resp, err := http.Get("http://" + addr + "/healthz")
	if err != nil {
		t.Fatalf("GET healthz: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz over TCP: %d", resp.StatusCode)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
}
