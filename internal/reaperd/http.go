package reaperd

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"

	"reaper/internal/telemetry"
	"reaper/internal/testprog"
)

// maxProgramBytes bounds a submitted program document. Programs are
// configuration, not data; 1 MiB is orders of magnitude above any real
// program and keeps a misdirected upload from ballooning the server.
const maxProgramBytes = 1 << 20

// routes wires the API onto the server's mux. Method routing and the
// {id} wildcard use the Go 1.22 ServeMux patterns.
func (s *Server) routes() {
	s.mux.HandleFunc("POST /v1/programs", s.counted("submit", s.handleSubmit))
	s.mux.HandleFunc("GET /v1/programs", s.counted("list", s.handleList))
	s.mux.HandleFunc("GET /v1/programs/{id}", s.counted("status", s.handleStatus))
	s.mux.HandleFunc("GET /v1/programs/{id}/result", s.counted("result", s.handleResult))
	s.mux.HandleFunc("POST /v1/programs/{id}/cancel", s.counted("cancel", s.handleCancel))
	s.mux.HandleFunc("GET /v1/programs/{id}/events", s.counted("events", s.handleEvents))
	s.mux.HandleFunc("GET /healthz", s.counted("healthz", s.handleHealthz))
	s.mux.HandleFunc("GET /metrics", s.counted("metrics", s.handleMetrics))
}

// counted wraps a handler with the per-route request counter.
func (s *Server) counted(route string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		s.reg.Counter("reaperd_http_requests_total", telemetry.L("route", route)).Inc()
		h(w, r)
	}
}

// writeJSON writes v as the response body with the given status code.
func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc, err := json.Marshal(v)
	if err != nil {
		// Wire types marshal by construction; nothing sane to do here.
		return
	}
	enc = append(enc, '\n')
	_, _ = w.Write(enc)
}

// writeError writes the uniform {"error": ...} body.
func writeError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, ErrorResponse{Error: fmt.Sprintf(format, args...)})
}

// rejectSubmission counts and reports one rejected submission.
func (s *Server) rejectSubmission(w http.ResponseWriter, code int, reason, detail string) {
	s.reg.Counter("reaperd_submissions_rejected_total", telemetry.L("reason", reason)).Inc()
	writeError(w, code, "%s", detail)
}

// handleSubmit validates the posted program, registers it, and enqueues
// it: 202 with the queued Status, 400 on an invalid program, 503 while
// draining, 429 when the queue is full.
func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(io.LimitReader(r.Body, maxProgramBytes+1))
	if err != nil {
		s.rejectSubmission(w, http.StatusBadRequest, "invalid", "reading request body: "+err.Error())
		return
	}
	if len(body) > maxProgramBytes {
		s.rejectSubmission(w, http.StatusRequestEntityTooLarge, "too_large",
			fmt.Sprintf("program exceeds %d bytes", maxProgramBytes))
		return
	}
	p, err := testprog.Load(body)
	if err != nil {
		s.rejectSubmission(w, http.StatusBadRequest, "invalid", err.Error())
		return
	}

	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		s.rejectSubmission(w, http.StatusServiceUnavailable, "draining",
			"server is draining; not accepting new programs")
		return
	}
	// The capacity check and registration stay under one lock so a job can
	// never slip into the queue after the drain sweep has emptied it.
	j := s.newJob(p)
	select {
	case s.queue <- j:
	default:
		delete(s.jobs, j.id)
		s.order = s.order[:len(s.order)-1]
		s.nextID--
		s.mu.Unlock()
		s.rejectSubmission(w, http.StatusTooManyRequests, "queue_full",
			fmt.Sprintf("queue full (%d programs waiting)", s.cfg.queueDepth()))
		return
	}
	st := j.status
	depth := len(s.queue)
	s.mu.Unlock()

	j.events.Emit(0, "accepted", j.id)
	s.reg.Counter("reaperd_submissions_total").Inc()
	s.reg.Gauge("reaperd_queue_depth").Set(float64(depth))
	writeJSON(w, http.StatusAccepted, st)
}

// handleList returns every submitted program in submission order.
func (s *Server) handleList(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	list := ProgramList{Programs: make([]Status, 0, len(s.order))}
	for _, id := range s.order {
		list.Programs = append(list.Programs, s.jobs[id].status)
	}
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, list)
}

// lookup resolves the {id} path element; nil means a 404 was written.
func (s *Server) lookup(w http.ResponseWriter, r *http.Request) *job {
	id := r.PathValue("id")
	s.mu.Lock()
	j := s.jobs[id]
	s.mu.Unlock()
	if j == nil {
		writeError(w, http.StatusNotFound, "unknown program %q", id)
	}
	return j
}

// handleStatus returns one program's Status.
func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	j := s.lookup(w, r)
	if j == nil {
		return
	}
	s.mu.Lock()
	st := j.status
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, st)
}

// handleResult streams the result document of a done program; 409 until
// the program reaches a terminal state, and for failed/cancelled programs
// (their Status carries the error instead).
func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	j := s.lookup(w, r)
	if j == nil {
		return
	}
	s.mu.Lock()
	state := j.status.State
	result := j.result
	s.mu.Unlock()
	if state != StateDone {
		writeError(w, http.StatusConflict, "program %s is %s; no result document", j.id, state)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_, _ = w.Write(result)
}

// handleCancel requests cancellation: a queued program is cancelled on the
// spot, a running one has its run context cancelled (the state flips to
// cancelled once the run unwinds), and a terminal program is left as-is.
// Always 200 with the current Status — cancel is idempotent.
func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	j := s.lookup(w, r)
	if j == nil {
		return
	}
	s.mu.Lock()
	j.cancelRequested = true
	state := j.status.State
	cancel := j.cancelRun
	s.mu.Unlock()
	switch state {
	case StateQueued:
		s.finishJob(j, StateCancelled, "", nil)
	case StateRunning:
		if cancel != nil {
			cancel()
		}
	}
	s.mu.Lock()
	st := j.status
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, st)
}

// handleEvents streams the program's progress events as JSONL (one
// telemetry.Event per line): accepted, started, per-unit progress, and
// finished. Events are live observability — their interleaving across
// chips is not part of the determinism contract.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	j := s.lookup(w, r)
	if j == nil {
		return
	}
	w.Header().Set("Content-Type", "application/jsonl")
	_ = telemetry.WriteJSONL(w, j.events.Events())
}

// handleHealthz reports liveness and drain state.
func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	draining := s.draining
	s.mu.Unlock()
	h := Health{Status: "ok"}
	if draining {
		h.Status = "draining"
	}
	writeJSON(w, http.StatusOK, h)
}

// handleMetrics serves the registry snapshot as JSON — same format as the
// -metrics-out artifacts and telemetry.StartServer's /metrics.
func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	_ = s.reg.Snapshot().WriteJSON(w)
}

// Start binds a TCP listener on addr (":0" picks a free port) and serves
// the Handler in the background until Close. ctx becomes the base context
// of every request. The scheduler is separate: run Serve (usually on the
// caller's main goroutine) or no accepted program will execute.
func (s *Server) Start(ctx context.Context, addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("reaperd: listen %s: %w", addr, err)
	}
	srv := &http.Server{
		Handler:     s.mux,
		BaseContext: func(net.Listener) context.Context { return ctx },
	}
	s.mu.Lock()
	s.ln = ln
	s.httpSrv = srv
	s.mu.Unlock()
	//lint:ignore naked-goroutine HTTP accept loop; lifecycle bounded by Close, mirrors telemetry.StartServer
	go func() { _ = srv.Serve(ln) }()
	return nil
}

// Addr returns the bound listen address after Start (useful with ":0").
func (s *Server) Addr() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ln == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// Close stops the HTTP listener started by Start. It does not touch the
// scheduler — cancel Serve's context for a graceful drain first, then
// Close once Serve returns.
func (s *Server) Close() error {
	s.mu.Lock()
	srv := s.httpSrv
	s.mu.Unlock()
	if srv == nil {
		return nil
	}
	return srv.Close()
}
