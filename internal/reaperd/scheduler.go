package reaperd

import (
	"context"
	"encoding/json"
	"strconv"

	"reaper/internal/parallel"
	"reaper/internal/telemetry"
	"reaper/internal/testprog"
)

// Serve runs the scheduler until ctx is cancelled, then drains: queued and
// running programs finish (their contexts are detached from ctx via
// context.WithoutCancel), new submissions are rejected with 503, and Serve
// returns nil once the queue is empty. It executes programs on its own
// goroutine — the caller's — pulling batches of up to MaxConcurrent jobs
// and fanning each batch out on internal/parallel with per-job fault
// isolation: a program that fails or panics fails alone.
//
// Scheduling never affects results: each program's randomness derives from
// its own seed, so results are byte-identical whatever the batch makeup.
func (s *Server) Serve(ctx context.Context) error {
	defer s.beginDrain() // even an idle shutdown must flip submissions to 503
	for {
		batch := s.nextBatch(ctx)
		if len(batch) == 0 {
			return nil
		}
		// Jobs already accepted run to completion during drain: the batch
		// context deliberately survives ctx cancellation. Per-job
		// cancellation (the cancel endpoint) wraps this inside runJob.
		s.runBatch(context.WithoutCancel(ctx), batch)
	}
}

// nextBatch blocks until at least one job is queued, then tops the batch
// up to MaxConcurrent without blocking. When ctx is cancelled it begins
// the drain instead: everything still queued is returned (concurrency
// stays bounded by the executor's worker count), and an empty batch means
// the drain is complete.
func (s *Server) nextBatch(ctx context.Context) []*job {
	var batch []*job
	select {
	case j := <-s.queue:
		batch = append(batch, j)
	case <-ctx.Done():
		s.beginDrain()
		for {
			select {
			case j := <-s.queue:
				batch = append(batch, j)
			default:
				return batch
			}
		}
	}
	for len(batch) < s.cfg.maxConcurrent() {
		select {
		case j := <-s.queue:
			batch = append(batch, j)
		default:
			return batch
		}
	}
	return batch
}

// beginDrain stops the intake: subsequent submissions get 503. Idempotent.
func (s *Server) beginDrain() {
	s.mu.Lock()
	s.draining = true
	s.mu.Unlock()
}

// runBatch executes one batch with per-job fault isolation via
// parallel.MapPartial: a job that panics surfaces as a JobFailure for that
// job only, and the rest of the batch completes normally.
func (s *Server) runBatch(ctx context.Context, batch []*job) {
	s.reg.Counter("reaperd_batches_total").Inc()
	s.reg.Gauge("reaperd_queue_depth").Set(float64(len(s.queue)))
	_, failures, err := parallel.MapPartial(ctx, len(batch), s.cfg.maxConcurrent(),
		parallel.RetryPolicy{}, // one attempt; re-running a tenant's program is the tenant's call
		func(ctx context.Context, i int) (struct{}, error) {
			s.runJob(ctx, batch[i])
			return struct{}{}, nil
		})
	if err != nil {
		// Unreachable: the batch context is never cancelled (see Serve).
		return
	}
	for _, f := range failures {
		s.finishJob(batch[f.Job], StateFailed, f.Reason(), nil)
	}
}

// runJob executes one program. The job's run context layers the cancel
// endpoint's per-job cancellation over the batch context.
func (s *Server) runJob(ctx context.Context, j *job) {
	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()

	s.mu.Lock()
	if j.status.State != StateQueued {
		// Cancelled while queued; finishJob already ran.
		s.mu.Unlock()
		return
	}
	j.status.State = StateRunning
	j.cancelRun = cancel
	s.mu.Unlock()
	j.events.Emit(0, "started", "")

	res, err := testprog.Run(runCtx, j.program, testprog.RunOptions{
		Workers:       s.cfg.jobWorkers(),
		Telemetry:     s.reg,
		TraceCapacity: s.cfg.TraceCapacity,
		OnProgress: func(ev testprog.ProgressEvent) {
			s.noteProgress(j, ev)
		},
	})
	switch {
	case err != nil && runCtx.Err() != nil:
		s.finishJob(j, StateCancelled, "", nil)
	case err != nil:
		s.finishJob(j, StateFailed, err.Error(), nil)
	default:
		enc, mErr := json.Marshal(res)
		if mErr != nil {
			s.finishJob(j, StateFailed, mErr.Error(), nil)
			return
		}
		s.finishJob(j, StateDone, "", append(enc, '\n'))
	}
}

// finishJob records a job's terminal state exactly once; later calls are
// ignored (e.g. a cancel racing the natural finish).
func (s *Server) finishJob(j *job, state State, errMsg string, result []byte) {
	s.mu.Lock()
	if j.status.State == StateDone || j.status.State == StateFailed || j.status.State == StateCancelled {
		s.mu.Unlock()
		return
	}
	j.status.State = state
	j.status.Error = errMsg
	j.cancelRun = nil
	j.result = result
	done := j.status.Done
	s.mu.Unlock()
	j.events.Emit(float64(done), "finished", string(state))
	s.reg.Counter("reaperd_programs_completed_total", telemetry.L("state", string(state))).Inc()
}

// noteProgress folds one testprog progress unit into the job's status and
// its event stream. Called concurrently from the run's workers.
func (s *Server) noteProgress(j *job, ev testprog.ProgressEvent) {
	s.mu.Lock()
	j.status.Done = ev.Done
	j.status.Total = ev.Total
	s.mu.Unlock()
	j.events.Emit(float64(ev.Done), "progress", ev.StageType,
		telemetry.L("chip", strconv.Itoa(ev.Chip)), telemetry.L("stage", strconv.Itoa(ev.Stage)))
	s.reg.Counter("reaperd_progress_units_total").Inc()
}
