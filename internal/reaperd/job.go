package reaperd

import (
	"fmt"
	"net"
	"net/http"
	"sync"

	"reaper/internal/telemetry"
	"reaper/internal/testprog"
)

// State is a program's position in the service lifecycle. Transitions are
// queued → running → (done | failed | cancelled); a queued program may
// also move straight to cancelled.
type State string

// The program lifecycle states (Status.State).
const (
	// StateQueued: accepted, waiting for the executor.
	StateQueued State = "queued"
	// StateRunning: the executor is running the program.
	StateRunning State = "running"
	// StateDone: finished successfully; the result document is available.
	StateDone State = "done"
	// StateFailed: the program errored (or panicked — tenants are
	// isolated, so one program's panic fails only that program).
	StateFailed State = "failed"
	// StateCancelled: cancelled via the cancel endpoint before finishing.
	StateCancelled State = "cancelled"
)

// Status is the wire representation of one submitted program, returned by
// the submit, status, list, and cancel endpoints.
type Status struct {
	// ID is the server-assigned program ID ("p000001", …), the path
	// element of the per-program endpoints.
	ID string `json:"id"`
	// Name echoes the program's optional name.
	Name string `json:"name,omitempty"`
	// Kind is the program family: "device" or "campaign".
	Kind string `json:"kind"`
	// Seed echoes the program seed the result is deterministic in.
	Seed uint64 `json:"seed"`
	// State is the lifecycle state; see the State constants.
	State State `json:"state"`
	// Done and Total count completed vs expected progress units
	// (chips × stages for device programs, stages for campaigns).
	Done  int64 `json:"done"`
	Total int64 `json:"total"`
	// Error carries the failure reason when State is "failed".
	Error string `json:"error,omitempty"`
}

// ProgramList is the wire response of GET /v1/programs: every submitted
// program in submission order.
type ProgramList struct {
	// Programs holds one Status per submission, oldest first.
	Programs []Status `json:"programs"`
}

// ErrorResponse is the wire shape of every non-2xx JSON response.
type ErrorResponse struct {
	// Error is a human-readable description of what was rejected and why.
	Error string `json:"error"`
}

// Health is the wire response of GET /healthz.
type Health struct {
	// Status is "ok" while the server accepts work, "draining" once
	// shutdown has begun.
	Status string `json:"status"`
}

// job is one submitted program and its server-side lifecycle state.
// Mutable fields are guarded by Server.mu; events has its own lock.
type job struct {
	id      string
	program *testprog.Program
	status  Status
	// cancelRequested is set by the cancel endpoint; the executor
	// re-checks it around state transitions.
	cancelRequested bool
	// cancelRun aborts the in-flight testprog.Run; non-nil only while
	// running.
	cancelRun func()
	// result is the marshaled result document once state is done.
	result []byte
	// events is the live progress stream served as JSONL by /events.
	// A Tracer wants a single logical owner: here that owner is the job
	// (accepted/started/finished from the scheduler, progress from the
	// run's workers — the tracer serializes them).
	events *telemetry.Tracer
}

// Server is the profiling service: an HTTP API over a bounded
// deterministic program executor. Build with New; see the package comment
// for the lifecycle.
type Server struct {
	cfg Config
	reg *telemetry.Registry
	mux *http.ServeMux

	mu       sync.Mutex
	jobs     map[string]*job
	order    []string // job IDs in submission order
	nextID   int
	draining bool
	queue    chan *job

	httpSrv *http.Server
	ln      net.Listener
}

// newJob registers a submitted program under the next sequential ID.
// Caller holds s.mu and has already checked draining and queue capacity.
func (s *Server) newJob(p *testprog.Program) *job {
	s.nextID++
	j := &job{
		id:      fmt.Sprintf("p%06d", s.nextID),
		program: p,
		events:  telemetry.NewTracer(s.cfg.TraceCapacity),
	}
	j.status = Status{
		ID:    j.id,
		Name:  p.Name,
		Kind:  string(p.Kind()),
		Seed:  p.Seed,
		State: StateQueued,
		Total: p.Units(),
	}
	s.jobs[j.id] = j
	s.order = append(s.order, j.id)
	return j
}
