// Online REAPER (paper Section 7.1): the firmware manager reprofiles the
// chip on a cadence derived from the Equation-7 longevity model, installs
// each profile into ArchShield, preserves resident data across rounds
// (footnote 4's save/restore), and keeps a system running at a 1024 ms
// refresh interval correct across several simulated days — while reporting
// the measured profiling overhead, the empirical counterpart of Figure 11.
package main

import (
	"context"
	"fmt"
	"log"

	"reaper"
	"reaper/internal/core"
	"reaper/internal/ecc"
	"reaper/internal/firmware"
	"reaper/internal/longevity"
	"reaper/internal/mitigate"
)

const (
	target   = 1.024
	simHours = 72
)

func main() {
	st, err := reaper.NewStation(reaper.ChipConfig{CapacityBits: 128 << 20, Seed: 99})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("chip: %v, running at %.0fms refresh for %d simulated hours\n\n",
		st.Device().Geometry(), target*1000, simHours)

	shield, err := mitigate.NewArchShield(st, 0.05)
	if err != nil {
		log.Fatal(err)
	}

	// Resident data: words that contain true failing cells — the hardest
	// data to keep alive at the extended interval.
	truth := reaper.Truth(st, target, reaper.RefTempC)
	geom := st.Device().Geometry()
	var victims []mitigate.WordAddr
	seen := map[mitigate.WordAddr]bool{}
	for _, bit := range truth.Sorted() {
		a := geom.AddrOf(bit)
		wa := mitigate.WordAddr{Bank: a.Bank, Row: a.Row, Word: a.Word}
		if !seen[wa] && !shield.InReservedSegment(wa) {
			seen[wa] = true
			victims = append(victims, wa)
		}
		if len(victims) >= 80 {
			break
		}
	}
	payload := func(i int) uint64 { return 0xdeadbeef00000000 | uint64(i) }
	writeData := func() error {
		for i, wa := range victims {
			if err := shield.Write(wa, payload(i)); err != nil {
				return err
			}
		}
		return nil
	}

	mgr, err := firmware.New(st, firmware.Config{
		TargetInterval: target,
		Reach:          core.ReachConditions{DeltaInterval: 0.75},
		Profiling:      core.Options{Iterations: 24, FreshRandomPerIteration: true},
		Longevity: &longevity.Model{
			Code:       ecc.SECDED(),
			TargetUBER: ecc.UBERConsumer,
			Bytes:      2 << 30, // notional production module
			Vendor:     reaper.VendorB(),
			TempC:      reaper.RefTempC,
		},
		AssumedCoverage: 0.99,
		SafetyFactor:    2,
		Install:         shield.Install,
		AfterRound:      writeData,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("reprofiling cadence from Eq 7 (99%% coverage, /2 safety): every %.1f hours\n",
		mgr.CadenceHours())

	if err := mgr.RunFor(context.Background(), simHours, 1800); err != nil {
		log.Fatal(err)
	}

	corrupted := 0
	for i, wa := range victims {
		got, err := shield.Read(wa)
		if err != nil {
			log.Fatal(err)
		}
		if got != payload(i) {
			corrupted++
		}
	}
	fmt.Printf("\nafter %d simulated hours:\n", simHours)
	fmt.Printf("  profiling rounds:           %d\n", mgr.Rounds())
	fmt.Printf("  cumulative profile size:    %d cells\n", mgr.Profile().Len())
	fmt.Printf("  ArchShield words remapped:  %d\n", shield.RemappedWords())
	fmt.Printf("  measured profiling overhead: %.3f%% of system time\n", mgr.OverheadFraction()*100)
	fmt.Printf("  corrupted resident words:   %d / %d\n", corrupted, len(victims))
}
