// ArchShield integration (paper Section 7.1.1): REAPER reach-profiles the
// chip, the discovered failing cells are installed into an ArchShield-style
// fault map backed by a reserved DRAM segment, and the system then runs at
// an aggressive 1024 ms refresh interval — 16x fewer refreshes than the
// JEDEC default — without data loss, while an unprotected chip corrupts.
package main

import (
	"fmt"
	"log"

	"reaper"
	"reaper/internal/core"
	"reaper/internal/mitigate"
)

const (
	target = 1.024
	seed   = 1006
)

func newStation() *reaper.Station {
	st, err := reaper.NewStation(reaper.ChipConfig{
		CapacityBits: 128 << 20,
		Seed:         seed,
	})
	if err != nil {
		log.Fatal(err)
	}
	return st
}

func main() {
	st := newStation()
	fmt.Printf("chip: %v\n", st.Device().Geometry())

	// 1. Profile with reach conditions for high coverage.
	prof, err := reaper.Profile(st, target, reaper.ReachConditions{DeltaInterval: 0.75},
		reaper.Options{Iterations: 24, FreshRandomPerIteration: true, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	truth := reaper.Truth(st, target, reaper.RefTempC)
	fmt.Printf("REAPER profile: %d cells (coverage %.4f, FPR %.3f) in %.0f simulated seconds\n",
		prof.Failures.Len(),
		reaper.Coverage(prof.Failures, truth),
		reaper.FalsePositiveRate(prof.Failures, truth),
		prof.RuntimeSeconds())

	// 2. Install the profile into ArchShield (4% reserved segment, as in
	// the paper).
	shield, err := mitigate.NewArchShield(st, 0.04)
	if err != nil {
		log.Fatal(err)
	}
	if err := shield.Install(prof.Failures); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ArchShield: %d words remapped into the %.1f%% reserved segment (%d spare words left)\n",
		shield.RemappedWords(), shield.CapacityOverhead()*100, shield.SpareWordsLeft())

	// 3. Operate at the extended refresh interval and stress the words
	// that contain true failing cells.
	victims := victimWords(st, shield, truth)
	fmt.Printf("writing %d victim words (each contains a true failing cell) ...\n", len(victims))

	st.SetRefreshInterval(target)
	for i, wa := range victims {
		if err := shield.Write(wa, payload(i)); err != nil {
			log.Fatal(err)
		}
	}
	st.Wait(900) // 15 minutes of simulated operation
	corrupted := 0
	for i, wa := range victims {
		got, err := shield.Read(wa)
		if err != nil {
			log.Fatal(err)
		}
		if got != payload(i) {
			corrupted++
		}
	}
	fmt.Printf("with ArchShield + REAPER: %d/%d words corrupted after 15 min at %.0fms refresh\n",
		corrupted, len(victims), target*1000)

	// 4. Control: the same run without protection.
	raw := newStation()
	raw.SetRefreshInterval(target)
	for i, wa := range victims {
		if err := raw.WriteWord(wa.Bank, wa.Row, wa.Word, payload(i)); err != nil {
			log.Fatal(err)
		}
	}
	raw.Wait(900)
	rawCorrupted := 0
	for i, wa := range victims {
		got, err := raw.ReadWord(wa.Bank, wa.Row, wa.Word)
		if err != nil {
			log.Fatal(err)
		}
		if got != payload(i) {
			rawCorrupted++
		}
	}
	fmt.Printf("unprotected chip:         %d/%d words corrupted\n", rawCorrupted, len(victims))
}

func payload(i int) uint64 { return 0x0101010101010101 * uint64(i%13+1) }

func victimWords(st *reaper.Station, shield *mitigate.ArchShield, truth *core.FailureSet) []mitigate.WordAddr {
	geom := st.Device().Geometry()
	var out []mitigate.WordAddr
	seen := map[mitigate.WordAddr]bool{}
	for _, bit := range truth.Sorted() {
		a := geom.AddrOf(bit)
		wa := mitigate.WordAddr{Bank: a.Bank, Row: a.Row, Word: a.Word}
		if !seen[wa] && !shield.InReservedSegment(wa) {
			seen[wa] = true
			out = append(out, wa)
		}
		if len(out) == 100 {
			break
		}
	}
	return out
}
