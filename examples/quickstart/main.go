// Quickstart: profile a simulated LPDDR4 chip with brute force (the paper's
// Algorithm 1) and with reach profiling (the paper's contribution), and
// compare the three metrics that matter: coverage, false positive rate, and
// profiling runtime.
package main

import (
	"fmt"
	"log"

	"reaper"
)

func main() {
	const (
		target = 1.024 // target refresh interval, seconds
		seed   = 42
	)

	fresh := func() *reaper.Station {
		st, err := reaper.NewStation(reaper.ChipConfig{
			CapacityBits: 256 << 20, // 256 Mbit scale-model chip
			Vendor:       reaper.VendorB(),
			Seed:         seed,
		})
		if err != nil {
			log.Fatal(err)
		}
		return st
	}

	st := fresh()
	fmt.Printf("chip: %v, %d modelled weak cells, vendor %s\n",
		st.Device().Geometry(), st.Device().WeakCellCount(), st.Device().Vendor().Name)

	// Ground truth at the target conditions (only the simulator knows it).
	truth := reaper.Truth(st, target, reaper.RefTempC)
	fmt.Printf("ground truth at %.0fms/45°C: %d failing cells\n\n", target*1000, truth.Len())

	opt := reaper.Options{Iterations: 16, FreshRandomPerIteration: true}

	// Baseline: brute-force profiling at the target interval.
	brute, err := reaper.BruteForce(st, target, opt)
	if err != nil {
		log.Fatal(err)
	}
	report("brute force @ target", brute, truth)

	// Reach profiling: +250 ms above the target (the paper's headline
	// configuration).
	st2 := fresh()
	reach, err := reaper.Profile(st2, target, reaper.ReachConditions{DeltaInterval: 0.25}, opt)
	if err != nil {
		log.Fatal(err)
	}
	report("reach      @ +250ms", reach, truth)

	// Reach profiling via temperature instead (+5°C, same effect per
	// Section 5.5 of the paper).
	st3 := fresh()
	hot, err := reaper.Profile(st3, target, reaper.ReachConditions{DeltaTempC: 5}, opt)
	if err != nil {
		log.Fatal(err)
	}
	report("reach      @ +5°C  ", hot, truth)
}

func report(name string, r *reaper.Result, truth *reaper.FailureSet) {
	fmt.Printf("%s: found %4d cells  coverage %.4f  false-positive rate %.3f  runtime %7.1fs (simulated)\n",
		name, r.Failures.Len(),
		reaper.Coverage(r.Failures, truth),
		reaper.FalsePositiveRate(r.Failures, truth),
		r.RuntimeSeconds())
}
