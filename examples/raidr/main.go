// RAIDR integration (paper Section 7.1.2): REAPER profiles the chip at a
// ladder of refresh intervals, the rows are binned by the retention of
// their weakest cell, and each bin is refreshed at its own rate — most rows
// end up in the longest bin, eliminating the bulk of refresh operations.
package main

import (
	"fmt"
	"log"

	"reaper"
	"reaper/internal/core"
	"reaper/internal/mitigate"
	"reaper/internal/power"
)

func main() {
	st, err := reaper.NewStation(reaper.ChipConfig{
		CapacityBits: 256 << 20,
		Seed:         77,
	})
	if err != nil {
		log.Fatal(err)
	}
	geom := st.Device().Geometry()
	fmt.Printf("chip: %v\n\n", geom)

	// Refresh-rate bins: the default plus three extended intervals.
	bins := []float64{0.064, 0.512, 1.024, 2.048}
	raidr, err := mitigate.NewRAIDR(geom, bins)
	if err != nil {
		log.Fatal(err)
	}

	// REAPER provides one profile per candidate bin, each taken with
	// +250ms reach for high coverage.
	profiles := make(map[float64]*core.FailureSet)
	for _, b := range bins[1:] {
		res, err := reaper.Profile(st, b, reaper.ReachConditions{DeltaInterval: 0.25},
			reaper.Options{Iterations: 12, FreshRandomPerIteration: true, Seed: uint64(b * 1e6)})
		if err != nil {
			log.Fatal(err)
		}
		profiles[b] = res.Failures
		fmt.Printf("profile @ %4.0fms (+250ms reach): %4d failing cells, %.0fs simulated profiling time\n",
			b*1000, res.Failures.Len(), res.RuntimeSeconds())
	}

	if err := raidr.Assign(func(t float64) *core.FailureSet { return profiles[t] }); err != nil {
		log.Fatal(err)
	}

	fmt.Println("\nrow bins:")
	counts := raidr.BinCounts()
	for i, c := range counts {
		fmt.Printf("  %6.0fms: %6d rows (%.2f%%)\n",
			bins[i]*1000, c, float64(c)/float64(geom.TotalRows())*100)
	}
	fmt.Printf("\nrefresh operations eliminated vs all-rows-at-64ms: %.1f%%\n",
		raidr.Savings(0.064)*100)

	// Translate the refresh-rate reduction into DRAM power using the
	// energy model, projected onto a production-scale module (32 x 8Gb
	// chips): effective refresh power scales with the binned op-rate
	// fraction measured on the scale-model chip.
	p := power.DefaultParams()
	opFraction := raidr.RefreshOpsPerSecond() / raidr.BaselineOpsPerSecond(0.064)
	moduleBytes := int64(32 * (8 << 30) / 8)
	baseRefreshW := p.RefreshWatts(moduleBytes, 0.064)
	binnedRefreshW := baseRefreshW * opFraction
	bg := p.BackgroundWatts(moduleBytes)
	fmt.Printf("projected 32GB module power (background + refresh): %.2f W -> %.2f W (%.1f%% reduction)\n",
		bg+baseRefreshW, bg+binnedRefreshW,
		(1-(bg+binnedRefreshW)/(bg+baseRefreshW))*100)
}
