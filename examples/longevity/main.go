// Profile longevity planning (paper Sections 6.2.2-6.2.3): given an ECC
// strength and a target UBER, how many failing cells can escape profiling,
// and how long does a profile stay valid before VRT accumulation forces a
// reprofile? Reproduces the paper's Table 1 and its worked example
// (2GB + SECDED + 1024ms @ 45°C + 99% coverage ==> ~2.3 days).
package main

import (
	"fmt"
	"log"

	"reaper"
	"reaper/internal/ecc"
	"reaper/internal/longevity"
)

func main() {
	// Table 1: tolerable RBER and tolerable bit-error counts.
	fmt.Println("Table 1 (UBER target 1e-15):")
	fmt.Printf("  %-8s %14s %10s %10s %10s %10s %10s\n",
		"code", "tolerable RBER", "512MB", "1GB", "2GB", "4GB", "8GB")
	sizes := []int64{512 << 20, 1 << 30, 2 << 30, 4 << 30, 8 << 30}
	for _, code := range []reaper.ECCCode{reaper.NoECC(), reaper.SECDED(), reaper.ECC2()} {
		fmt.Printf("  %-8s %14.2e", code.Name, code.TolerableRBER(reaper.UBERConsumer))
		for _, sz := range sizes {
			fmt.Printf(" %10.3g", code.TolerableBitErrors(reaper.UBERConsumer, sz))
		}
		fmt.Println()
	}

	// The paper's worked example.
	m := longevity.Model{
		Code:       ecc.SECDED(),
		TargetUBER: ecc.UBERConsumer,
		Bytes:      2 << 30,
		Vendor:     reaper.VendorB(),
		TempC:      45,
	}
	const target = 1.024
	fmt.Printf("\nworked example (2GB, SECDED, %dms @ 45°C):\n", int(target*1000))
	fmt.Printf("  expected failing cells:         %.0f (paper: 2464)\n", m.ExpectedFailures(target))
	fmt.Printf("  accumulation rate A:            %.2f cells/hour (paper: 0.73)\n", m.AccumulationRate(target))
	fmt.Printf("  minimum viable coverage:        %.4f\n", m.MinimumCoverage(target))

	if d, err := m.LongevityWithBudget(target, 0.99, 65); err == nil {
		fmt.Printf("  longevity @99%% cov, paper N=65: %.1f days (paper: ~2.3)\n", d.Hours()/24)
	}
	if d, err := m.Longevity(target, 0.99); err == nil {
		fmt.Printf("  longevity @99%% cov, exact Eq 6: %.1f days\n", d.Hours()/24)
	}

	// Planning sweep: how often must the system reprofile across target
	// intervals and coverages?
	fmt.Println("\nreprofiling cadence (exact Eq 6 budget, hours between rounds):")
	fmt.Printf("  %8s", "interval")
	coverages := []float64{1.0, 0.999, 0.99}
	for _, c := range coverages {
		fmt.Printf(" %12s", fmt.Sprintf("cov=%.3f", c))
	}
	fmt.Println()
	for _, t := range []float64{0.512, 0.768, 1.024, 1.280, 1.536} {
		fmt.Printf("  %6.0fms", t*1000)
		for _, c := range coverages {
			d, err := m.Longevity(t, c)
			if err != nil {
				fmt.Printf(" %12s", "infeasible")
				continue
			}
			fmt.Printf(" %12.1f", d.Hours())
		}
		fmt.Println()
	}

	// What the cadence costs: fraction of system time spent profiling if
	// each round is a full brute-force pass (Equation 9) vs REAPER.
	fmt.Println("\nprofiling time fraction at the implied cadence (2GB, 16 iters x 6 patterns):")
	for _, t := range []float64{1.024, 1.280, 1.536} {
		d, err := m.Longevity(t, 1.0)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %6.0fms: reprofile every %6.1fh\n", t*1000, d.Hours())
	}
}
