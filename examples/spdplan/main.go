// SPD-driven reach planning (paper Section 6.3): characterize a chip the
// way a vendor would, serialize the result as the SPD payload, and let a
// system integrator load it and plan reach conditions under its own
// constraints — without ever re-characterizing the chip.
package main

import (
	"bytes"
	"context"
	"fmt"
	"log"

	"reaper"
	"reaper/internal/core"
	"reaper/internal/memctrl"
	"reaper/internal/spd"
)

func mkStation() (*memctrl.Station, error) {
	return reaper.NewStation(reaper.ChipConfig{
		CapacityBits: 64 << 20,
		Vendor:       reaper.VendorB(),
		Seed:         2024,
	})
}

func main() {
	// --- Vendor side: characterize the chip and write the SPD payload.
	fmt.Println("characterizing chip (vendor side) ...")
	c, err := spd.Characterize(context.Background(), mkStation, spd.DefaultCharacterizeConfig())
	if err != nil {
		log.Fatal(err)
	}
	var payload bytes.Buffer
	if err := c.Save(&payload); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("SPD payload (%d bytes of JSON):\n", payload.Len())
	fmt.Printf("  vendor %s: BER(t) = %.3g*(t/1.024s)^%.2f, temp coeff %.3f/°C, %d tradeoff samples\n\n",
		c.Vendor, c.BERAnchor, c.BERExponent, c.TempCoeff, len(c.Samples))

	// --- System side: load the payload and plan under three different
	// system constraint sets.
	loaded, err := spd.Load(bytes.NewReader(payload.Bytes()))
	if err != nil {
		log.Fatal(err)
	}
	scenarios := []struct {
		name string
		con  spd.Constraints
	}{
		{"row map-out (FPR intolerant)", spd.Constraints{MinCoverage: 0.95, MaxFalsePositiveRate: 0.25, MaxDeltaTempC: 0}},
		{"cell remap (FPR tolerant)", spd.Constraints{MinCoverage: 0.98, MaxFalsePositiveRate: 0.70, MaxDeltaTempC: 0}},
		{"thermally controllable system", spd.Constraints{MinCoverage: 0.98, MaxFalsePositiveRate: 0.70, MaxDeltaTempC: 10}},
	}
	for _, s := range scenarios {
		reach, sample, err := loaded.PlanReach(s.con)
		if err != nil {
			fmt.Printf("%-32s: %v\n", s.name, err)
			continue
		}
		fmt.Printf("%-32s: profile at +%.0fms/+%.1f°C (promises coverage %.3f, FPR %.2f, runtime %.2fx of brute force)\n",
			s.name, reach.DeltaInterval*1000, reach.DeltaTempC,
			sample.Coverage, sample.FalsePositiveRate, sample.RuntimeRel)
	}

	// --- Validate one plan against ground truth on a fresh chip.
	reach, _, err := loaded.PlanReach(spd.Constraints{
		MinCoverage: 0.98, MaxFalsePositiveRate: 0.70, MaxDeltaTempC: 0})
	if err != nil {
		log.Fatal(err)
	}
	st, err := mkStation()
	if err != nil {
		log.Fatal(err)
	}
	res, err := core.Reach(st, loaded.ReferenceInterval, reach,
		core.Options{Iterations: 8, FreshRandomPerIteration: true})
	if err != nil {
		log.Fatal(err)
	}
	truth := core.Truth(st, loaded.ReferenceInterval, reaper.RefTempC)
	fmt.Printf("\nvalidation at planned conditions: coverage %.4f, FPR %.3f vs ground truth\n",
		core.Coverage(res.Failures, truth), core.FalsePositiveRate(res.Failures, truth))
}
