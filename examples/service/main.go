// Profiling as a service: the REAPER reach-profiling tradeoff study
// (paper Figures 9-10) expressed as a declarative test program, submitted
// to an in-process reaperd over its HTTP API, and read back as JSON —
// campaigns as data instead of Go code. The same program document works
// unchanged against a standalone `reaperd` daemon; see API.md for the
// schema and EXPERIMENTS.md ("Campaigns as data") for the walkthrough.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"reaper/client"
	"reaper/internal/parallel"
	"reaper/internal/reaperd"
)

// program is a campaign test program: one tradeoff_grid stage sweeping
// reach conditions around the 1.024 s / 45°C target on a scale-model chip.
const program = `{
  "version": 1,
  "name": "fig9-fig10-grid",
  "seed": 1004,
  "fleet": {"bits": 8388608, "weak_scale": 40},
  "stages": [
    {"type": "tradeoff_grid",
     "target_interval_s": 1.024, "target_temp_c": 45,
     "delta_intervals_s": [0, 0.25, 0.75],
     "delta_temps_c": [0, 5],
     "iterations": 8, "coverage_goal": 0.99, "max_iterations": 64}
  ],
  "output": {"include_metrics": true}
}`

func main() {
	srv := reaperd.New(reaperd.Config{})
	ctx, stopServe := context.WithCancel(context.Background())
	if err := srv.Start(ctx, "127.0.0.1:0"); err != nil {
		log.Fatal(err)
	}
	defer srv.Close()
	fmt.Printf("reaperd listening on http://%s\n\n", srv.Addr())

	// The scheduler and the client share the worker pool: one slot runs
	// Serve, the other drives the submit → poll → result loop against it.
	err := parallel.Do(context.Background(), 2,
		func(context.Context) error { return srv.Serve(ctx) },
		func(cctx context.Context) error {
			defer stopServe()
			return runCampaign(cctx, "http://"+srv.Addr())
		},
	)
	if err != nil {
		log.Fatal(err)
	}
}

// runCampaign submits the grid program and renders the tradeoff table.
func runCampaign(ctx context.Context, base string) error {
	c := client.New(base)
	st, err := c.Submit(ctx, []byte(program))
	if err != nil {
		return err
	}
	fmt.Printf("submitted %s (%s, seed %d) — polling\n", st.ID, st.Name, st.Seed)
	fin, err := c.Wait(ctx, st.ID, 100*time.Millisecond)
	if err != nil {
		return err
	}
	if fin.State != reaperd.StateDone {
		return fmt.Errorf("program %s finished %s: %s", fin.ID, fin.State, fin.Error)
	}
	res, err := c.Result(ctx, fin.ID)
	if err != nil {
		return err
	}

	fmt.Printf("\n%-28s %9s %9s %9s %8s\n",
		"reach (Δinterval, Δtemp)", "coverage", "FPR", "iters", "runtime")
	for _, pt := range res.Stages[0].Tradeoff {
		fmt.Printf("%-28s %8.2f%% %8.4f%% %9d %7.2fx\n",
			fmt.Sprintf("+%.2fs, +%.0f°C", pt.Reach.DeltaInterval, pt.Reach.DeltaTempC),
			100*pt.Coverage, 100*pt.FalsePositiveRate,
			pt.IterationsToGoal, pt.RuntimeRelative)
	}
	fmt.Printf("\nsame grid via the Go API: experiments.Fig9Fig10Tradeoff — results are byte-identical.\n")
	return nil
}
