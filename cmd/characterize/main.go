// Command characterize regenerates the paper's characterization figures
// (Figures 2-8) on simulated chips and prints them as text tables.
//
// Exit status: 0 on success, 2 on configuration or runtime errors.
//
// Usage:
//
//	characterize [-fig N] [-quick] [-seed S] [-workers N]
//
// With no -fig, every figure is produced in order.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"

	"reaper/internal/dram"
	"reaper/internal/experiments"
	"reaper/internal/parallel"
)

// workers is the pool size shared by every fleet-shaped experiment here;
// results are identical at any value (see internal/parallel).
var workers int

// main delegates to run so the process exits with the uniform status codes.
func main() { os.Exit(run()) }

func run() int {
	fig := flag.Int("fig", 0, "figure to regenerate (2-8); 0 = all")
	quick := flag.Bool("quick", false, "reduced iteration counts for a fast pass")
	seed := flag.Uint64("seed", 1, "experiment seed")
	population := flag.Int("population", 0, "also sweep a fleet of N chips per vendor")
	flag.IntVar(&workers, "workers", parallel.DefaultWorkers(),
		"worker pool size for fleet sweeps (results are identical at any count)")
	flag.Parse()

	if workers < 1 {
		log.Printf("characterize: -workers must be >= 1 (got %d)", workers)
		return 2
	}
	if *fig != 0 && (*fig < 2 || *fig > 8) {
		log.Printf("characterize: unknown figure %d; valid figures: 2-8 (or 0 for all)", *fig)
		return 2
	}

	if *population > 0 {
		cfg := experiments.DefaultPopulationConfig()
		cfg.ChipsPerVendor = *population
		cfg.Seed = *seed
		cfg.Workers = workers
		results, err := experiments.PopulationSweep(context.Background(), cfg)
		if err != nil {
			log.Println(err)
			return 2
		}
		experiments.PopulationTable(results).Render(os.Stdout)
		if *fig == 0 {
			return 0
		}
	}

	figs := map[int]func(bool, uint64) error{
		2: fig2,
		3: fig3,
		4: fig4,
		5: fig5,
		6: fig6,
		7: func(_ bool, seed uint64) error { return fig7(seed) },
		8: func(_ bool, seed uint64) error { return fig8(seed) },
	}
	if *fig != 0 {
		if err := figs[*fig](*quick, *seed); err != nil {
			log.Println(err)
			return 2
		}
		return 0
	}
	for n := 2; n <= 8; n++ {
		if err := figs[n](*quick, *seed); err != nil {
			log.Println(err)
			return 2
		}
	}
	return 0
}

func fig2(quick bool, seed uint64) error {
	cfg := experiments.DefaultFig2Config()
	cfg.Seed = seed
	cfg.Workers = workers
	if quick {
		cfg.Iterations = 2
	}
	rows, err := experiments.Fig2RetentionDistribution(context.Background(), cfg)
	if err != nil {
		return err
	}
	experiments.Fig2Table(rows).Render(os.Stdout)
	return nil
}

func fig3(quick bool, seed uint64) error {
	cfg := experiments.DefaultFig3Config()
	cfg.Chip.Seed = seed
	if quick {
		cfg.Iterations = 60
		cfg.TotalSimHours = 12
	}
	res, err := experiments.Fig3VRTAccumulation(cfg)
	if err != nil {
		return err
	}
	t := &experiments.Table{
		Title:  "Figure 3: failure discovery over continuous brute-force profiling @2048ms",
		Header: []string{"iteration", "sim hours", "cumulative", "new", "repeat"},
		Caption: fmt.Sprintf("steady-state accumulation %.2f cells/hour; per-iteration total ~%.0f "+
			"(paper: accumulation never stops; totals stay constant)",
			res.SteadyStateCellsPerHour, res.PerIterationMean),
	}
	stride := len(res.Points)/12 + 1
	for i, p := range res.Points {
		if i%stride == 0 || i == len(res.Points)-1 {
			t.AddRow(fmt.Sprint(p.Iteration), fmt.Sprintf("%.1f", p.SimHours),
				fmt.Sprint(p.Cumulative), fmt.Sprint(p.NewCells), fmt.Sprint(p.Repeats))
		}
	}
	t.Render(os.Stdout)
	return nil
}

func fig4(quick bool, seed uint64) error {
	cfg := experiments.DefaultFig4Config()
	cfg.Seed = seed
	cfg.Workers = workers
	if quick {
		cfg.Iterations = 30
		cfg.SimHours = 12
		cfg.Intervals = []float64{2.048, 4.096}
	}
	rows, err := experiments.Fig4AccumulationRates(context.Background(), cfg)
	if err != nil {
		return err
	}
	experiments.Fig4Table(rows).Render(os.Stdout)
	return nil
}

func fig5(quick bool, seed uint64) error {
	cfg := experiments.DefaultFig5Config()
	cfg.Seed = seed
	cfg.Workers = workers
	if quick {
		cfg.Iterations = 16
		cfg.Vendors = []dram.VendorParams{dram.VendorB()}
	}
	rows, err := experiments.Fig5PatternCoverage(context.Background(), cfg)
	if err != nil {
		return err
	}
	experiments.Fig5Table(rows).Render(os.Stdout)
	return nil
}

func fig6(quick bool, seed uint64) error {
	cfg := experiments.DefaultFig6Config()
	cfg.Chip.Seed = seed
	if quick {
		cfg.SampleCells = 10
		cfg.PointsPerCell = 5
	}
	res, err := experiments.Fig6CellCDFs(cfg)
	if err != nil {
		return err
	}
	t := &experiments.Table{
		Title:  "Figure 6: per-cell failure CDFs (normal) and sigma population (lognormal), 40°C",
		Header: []string{"metric", "value"},
		Caption: "paper: individual cells fail with normal CDFs; sigmas are lognormal with the " +
			"majority below 200ms",
	}
	t.AddRow("cells with measured CDFs", fmt.Sprint(res.CellsMeasured))
	t.AddRow("median |measured - Phi| (KS)", fmt.Sprintf("%.3f", res.MedianKS))
	t.AddRow("p90 |measured - Phi| (KS)", fmt.Sprintf("%.3f", res.P90KS))
	t.AddRow("sigma lognormal mu (log s)", fmt.Sprintf("%.3f", res.SigmaLogMu))
	t.AddRow("sigma lognormal sigma", fmt.Sprintf("%.3f", res.SigmaLogSigma))
	t.AddRow("fraction of sigmas < 200ms", experiments.Pct(res.FracSigmaBelow200ms))
	t.Render(os.Stdout)
	return nil
}

func fig7(seed uint64) error {
	chip := experiments.DefaultChipSpec(seed)
	rows, err := experiments.Fig7TemperatureShift(chip, []float64{40, 45, 50, 55})
	if err != nil {
		return err
	}
	t := &experiments.Table{
		Title:   "Figure 7: (mu, sigma) distributions vs temperature",
		Header:  []string{"temp", "median mu (s)", "median sigma (s)"},
		Caption: "paper: both distributions shift left (shorter, narrower) as temperature rises",
	}
	for _, r := range rows {
		t.AddRow(fmt.Sprintf("%.0f°C", r.TempC),
			fmt.Sprintf("%.3f", r.MedianMuS), fmt.Sprintf("%.4f", r.MedianSigma))
	}
	t.Render(os.Stdout)
	return nil
}

func fig8(seed uint64) error {
	chip := experiments.DefaultChipSpec(seed)
	res, err := experiments.Fig8CombinedDistribution(chip,
		[]float64{40, 45, 50, 55}, []float64{0.512, 1.024, 2.048, 4.096})
	if err != nil {
		return err
	}
	t := &experiments.Table{
		Title:  "Figure 8: combined failure probability over temperature x interval",
		Header: []string{"temp \\ tREFI", "512ms", "1024ms", "2048ms", "4096ms"},
		Caption: fmt.Sprintf("+10°C is equivalent to extending the interval by %.2fs at 45°C/2048ms "+
			"(paper: ~1s)", res.EquivalentDeltaIntervalPer10C),
	}
	for ti, temp := range res.Temps {
		row := []string{fmt.Sprintf("%.0f°C", temp)}
		for ii := range res.Intervals {
			row = append(row, fmt.Sprintf("%.4f", res.MeanFailProb[ti][ii]))
		}
		t.AddRow(row...)
	}
	t.Render(os.Stdout)
	return nil
}
