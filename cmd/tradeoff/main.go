// Command tradeoff regenerates the paper's reach-condition tradeoff
// analysis (Figures 9 and 10): a grid of (Δ refresh interval,
// Δ temperature) reach conditions scored for coverage, false positive rate,
// and profiling runtime relative to brute force.
//
// Exit status (uniform across the reaper tools, see OBSERVABILITY.md):
// 0 on success, 2 on configuration or runtime errors.
//
// Usage:
//
//	tradeoff [-target ms] [-quick] [-seed S] [-workers N]
//	         [-metrics-out file.json] [-trace-out file.jsonl]
//	         [-pprof-addr host:port]
//
// -metrics-out and -trace-out opt the run into the deterministic telemetry
// layer (see OBSERVABILITY.md); the grid-point trace is emitted after the
// grid joins, in row-major order, so it is identical at any -workers count.
package main

import (
	"bytes"
	"context"
	"flag"
	"fmt"
	"log"
	"os"

	"reaper/internal/checkpoint"
	"reaper/internal/core"
	"reaper/internal/exitcode"
	"reaper/internal/experiments"
	"reaper/internal/parallel"
	"reaper/internal/telemetry"
)

// main delegates to run so deferred cleanups execute before the process
// exits with a status code.
func main() { os.Exit(run()) }

func run() int {
	targetMs := flag.Float64("target", 1024, "target refresh interval in milliseconds")
	quick := flag.Bool("quick", false, "smaller grid and iteration counts")
	seed := flag.Uint64("seed", 9, "experiment seed")
	workers := flag.Int("workers", parallel.DefaultWorkers(),
		"worker pool size for the reach grid (results are identical at any count)")
	metricsOut := flag.String("metrics-out", "", "write the telemetry metrics snapshot (JSON) to this file")
	traceOut := flag.String("trace-out", "", "write the grid-point trace (JSONL) to this file")
	pprofAddr := flag.String("pprof-addr", "", "serve net/http/pprof and /metrics on this address (e.g. localhost:6060)")
	flag.Parse()

	if *workers < 1 {
		log.Printf("tradeoff: -workers must be >= 1 (got %d)", *workers)
		return exitcode.ConfigError
	}

	var reg *telemetry.Registry
	if *metricsOut != "" || *traceOut != "" || *pprofAddr != "" {
		reg = telemetry.New()
	}
	if *pprofAddr != "" {
		srv, err := telemetry.StartServer(*pprofAddr, reg)
		if err != nil {
			log.Println(err)
			return exitcode.ConfigError
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "tradeoff: pprof and /metrics on http://%s\n", srv.Addr())
	}

	cfg := experiments.DefaultFig9Config()
	cfg.TargetInterval = *targetMs / 1000
	cfg.Seed = *seed
	cfg.Chip.Seed = *seed
	cfg.Workers = *workers
	if *quick {
		cfg.DeltaIntervals = []float64{0, 0.25, 0.5}
		cfg.DeltaTemps = []float64{0, 5}
		cfg.Iterations = 8
		cfg.MaxIterations = 32
	}
	ctx := telemetry.WithRegistry(context.Background(), reg)
	points, err := experiments.Fig9Fig10Tradeoff(ctx, cfg)
	if err != nil {
		log.Println(err)
		return exitcode.ConfigError
	}
	experiments.Fig9Table(points).Render(os.Stdout)

	h, err := experiments.Headline(points)
	if err != nil {
		log.Println(err)
		return exitcode.ConfigError
	}
	fmt.Printf("headline (paper Section 6.1.2): at +250ms reach, coverage %.4f, FPR %.3f, speedup %.2fx\n",
		h.Coverage, h.FalsePositiveRate, h.Speedup)
	fmt.Printf("most aggressive grid point: speedup %.2fx at FPR %.3f\n",
		h.AggressiveSpeedup, h.AggressiveFPR)
	fmt.Println("(paper: 2.5x at 99% coverage and <50% FPR; up to 3.5x at >75% FPR)")

	if *metricsOut != "" {
		if err := writeMetrics(*metricsOut, reg); err != nil {
			log.Println(err)
			return exitcode.ConfigError
		}
	}
	if *traceOut != "" {
		if err := writeTrace(*traceOut, points); err != nil {
			log.Println(err)
			return exitcode.ConfigError
		}
	}
	return exitcode.OK
}

// writeMetrics serializes the registry snapshot to path atomically, so a
// crash mid-write never leaves a truncated artifact behind.
func writeMetrics(path string, reg *telemetry.Registry) error {
	var buf bytes.Buffer
	if err := reg.Snapshot().WriteJSON(&buf); err != nil {
		return err
	}
	return checkpoint.WriteFileAtomic(path, buf.Bytes(), 0o644)
}

// writeTrace emits one "tradeoff-point" event per grid point, in the
// deterministic row-major order the explorer returns. The events are
// synthesized after the concurrent grid joins — a live tracer shared by the
// workers would record arrival order, which varies with worker count.
func writeTrace(path string, points []core.TradeoffPoint) error {
	tracer := telemetry.NewTracer(len(points))
	for _, pt := range points {
		tracer.Emit(pt.RuntimeSeconds, "tradeoff-point",
			fmt.Sprintf("dI=%gs dT=%gC coverage=%.4f fpr=%.4f speedup=%.2f",
				pt.Reach.DeltaInterval, pt.Reach.DeltaTempC,
				pt.Coverage, pt.FalsePositiveRate, pt.Speedup()))
	}
	var buf bytes.Buffer
	err := telemetry.WriteJSONL(&buf, telemetry.Merge(telemetry.Trace{Source: "grid", Events: tracer.Events()}))
	if err != nil {
		return err
	}
	return checkpoint.WriteFileAtomic(path, buf.Bytes(), 0o644)
}
