// Command tradeoff regenerates the paper's reach-condition tradeoff
// analysis (Figures 9 and 10): a grid of (Δ refresh interval,
// Δ temperature) reach conditions scored for coverage, false positive rate,
// and profiling runtime relative to brute force.
//
// Usage:
//
//	tradeoff [-target ms] [-quick] [-seed S] [-workers N]
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"

	"reaper/internal/experiments"
	"reaper/internal/parallel"
)

func main() {
	targetMs := flag.Float64("target", 1024, "target refresh interval in milliseconds")
	quick := flag.Bool("quick", false, "smaller grid and iteration counts")
	seed := flag.Uint64("seed", 9, "experiment seed")
	workers := flag.Int("workers", parallel.DefaultWorkers(),
		"worker pool size for the reach grid (results are identical at any count)")
	flag.Parse()

	cfg := experiments.DefaultFig9Config()
	cfg.TargetInterval = *targetMs / 1000
	cfg.Seed = *seed
	cfg.Chip.Seed = *seed
	cfg.Workers = *workers
	if *quick {
		cfg.DeltaIntervals = []float64{0, 0.25, 0.5}
		cfg.DeltaTemps = []float64{0, 5}
		cfg.Iterations = 8
		cfg.MaxIterations = 32
	}
	points, err := experiments.Fig9Fig10Tradeoff(context.Background(), cfg)
	if err != nil {
		log.Fatal(err)
	}
	experiments.Fig9Table(points).Render(os.Stdout)

	h, err := experiments.Headline(points)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("headline (paper Section 6.1.2): at +250ms reach, coverage %.4f, FPR %.3f, speedup %.2fx\n",
		h.Coverage, h.FalsePositiveRate, h.Speedup)
	fmt.Printf("most aggressive grid point: speedup %.2fx at FPR %.3f\n",
		h.AggressiveSpeedup, h.AggressiveFPR)
	fmt.Println("(paper: 2.5x at 99% coverage and <50% FPR; up to 3.5x at >75% FPR)")
}
