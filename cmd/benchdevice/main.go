// Command benchdevice measures the device read-path microbenchmarks — the
// innermost loop of every experiment in the repository — at three weak-cell
// densities and writes a machine-readable baseline to BENCH_device.json
// (same schema as BENCH_parallel.json; see internal/benchfmt). The densities
// bracket the experiment harnesses: WeakScale 10 is a sparse research chip,
// 30 is the standard bench density, 100 is a stress density where the active
// band holds thousands of cells per pass.
//
// Usage:
//
//	benchdevice [-out BENCH_device.json] [-quick]
//
// -quick runs every benchmark body once instead of until steady state; CI
// uses it as a non-gating smoke check that the hot paths still execute and
// the baseline still marshals.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"testing"
	"time"

	"reaper/internal/benchfmt"
	"reaper/internal/dram"
	"reaper/internal/patterns"
)

// seedMicro pins the device read-path numbers measured at this PR's base
// commit, before the sparse active-window index: every pass walked the full
// weak population and evaluated the failure CDF per cell, and RestoreAll
// paid ReadCompareAll's fails-slice allocation and sort just to discard them.
var seedMicro = []benchfmt.MicroResult{
	{Name: "read_compare_all@ws10", NsPerOp: 1_398_424, AllocsPerOp: 9, BytesPerOp: 3007},
	{Name: "read_compare_all@ws30", NsPerOp: 6_055_465, AllocsPerOp: 11, BytesPerOp: 8232},
	{Name: "read_compare_all@ws100", NsPerOp: 36_785_451, AllocsPerOp: 14, BytesPerOp: 39592},
	{Name: "read_compare_all_autorefresh@ws30", NsPerOp: 11_361_610, AllocsPerOp: 1, BytesPerOp: 48},
	{Name: "restore_all@ws10", NsPerOp: 1_160_320, AllocsPerOp: 9, BytesPerOp: 2984},
	{Name: "restore_all@ws30", NsPerOp: 5_153_856, AllocsPerOp: 11, BytesPerOp: 8232},
	{Name: "restore_all@ws100", NsPerOp: 37_875_158, AllocsPerOp: 14, BytesPerOp: 39592},
}

func main() {
	out := flag.String("out", "BENCH_device.json", "output path")
	quick := flag.Bool("quick", false, "run each benchmark body once (CI smoke)")
	flag.Parse()

	b := benchfmt.NewBaseline()
	b.GeneratedAt = time.Now().UTC().Format(time.RFC3339)
	b.SeedMicro = seedMicro

	for _, ws := range []float64{10, 30, 100} {
		b.Micro = append(b.Micro,
			benchfmt.Micro(fmt.Sprintf("read_compare_all@ws%g", ws),
				measure(*quick, readCompareBody(ws, 0))))
		if ws == 30 {
			b.Micro = append(b.Micro,
				benchfmt.Micro("read_compare_all_autorefresh@ws30",
					measure(*quick, readCompareBody(ws, 0.064))))
		}
		b.Micro = append(b.Micro,
			benchfmt.Micro(fmt.Sprintf("restore_all@ws%g", ws),
				measure(*quick, restoreBody(ws))))
	}

	if err := b.WriteFile(*out); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %s\n", *out)
	for _, m := range b.Micro {
		fmt.Printf("  %-36s %.0f ns/op  %d allocs/op  %d B/op\n",
			m.Name, m.NsPerOp, m.AllocsPerOp, m.BytesPerOp)
	}
	_ = os.Stdout.Sync()
}

// newBenchDevice builds the benchmark chip at the given weak-cell density:
// the same geometry and seed as internal/dram's BenchmarkReadCompareAll.
func newBenchDevice(weakScale, autoRef float64) *dram.Device {
	d, err := dram.NewDevice(dram.Config{
		Geometry:  dram.Geometry{Banks: 8, RowsPerBank: 256, WordsPerRow: 256},
		Vendor:    dram.VendorB(),
		Seed:      7,
		WeakScale: weakScale,
	})
	if err != nil {
		log.Fatal(err)
	}
	if autoRef > 0 {
		d.SetAutoRefresh(autoRef)
	}
	return d
}

// readCompareBody is one full write/wait/read profiling pass per op.
func readCompareBody(weakScale, autoRef float64) func(n int) {
	d := newBenchDevice(weakScale, autoRef)
	ps := []dram.RowData{patterns.Solid1(), patterns.Checkerboard(), patterns.Random(1)}
	now := 0.0
	return func(n int) {
		for i := 0; i < n; i++ {
			d.WriteAll(ps[i%len(ps)], now)
			now += 2.048
			_ = d.ReadCompareAll(now)
			now += 0.5
		}
	}
}

// restoreBody is one write plus a full refresh sweep (no failure collection)
// per op — the path auto-refresh modelling and scrubbing lean on.
func restoreBody(weakScale float64) func(n int) {
	d := newBenchDevice(weakScale, 0)
	ps := []dram.RowData{patterns.Solid1(), patterns.Checkerboard(), patterns.Random(1)}
	now := 0.0
	return func(n int) {
		for i := 0; i < n; i++ {
			d.WriteAll(ps[i%len(ps)], now)
			now += 2.048
			d.RestoreAll(now)
			now += 0.5
		}
	}
}

// measure times body until steady state via testing.Benchmark, or exactly
// once in quick mode (alloc figures are only meaningful in full mode).
func measure(quick bool, body func(n int)) testing.BenchmarkResult {
	if quick {
		start := time.Now()
		body(1)
		return testing.BenchmarkResult{N: 1, T: time.Since(start)}
	}
	return testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		b.ResetTimer()
		body(b.N)
	})
}
