// Command benchdevice measures the device read-path microbenchmarks — the
// innermost loop of every experiment in the repository — at three weak-cell
// densities and writes a machine-readable baseline to BENCH_device.json
// (same schema as BENCH_parallel.json; see internal/benchfmt). The densities
// bracket the experiment harnesses: WeakScale 10 is a sparse research chip,
// 30 is the standard bench density, 100 is a stress density where the active
// band holds thousands of cells per pass.
//
// Beyond the density sweep, the baseline records the banked-parallelism
// micros (read_compare_all_banked_w*: the same full-classification sweep in
// BankStreams mode at 1, 2 and 4 workers — byte-identical results, wall
// clock only moves on multi-core hosts; see the num_cpu/gomaxprocs header),
// the incremental re-profiling micros (incr_round1: every round classifies
// in full; incr_steady: steady-state rounds served from the round cache),
// and the fleet-construction micros (new_device vs new_device_template).
//
// Usage:
//
//	benchdevice [-out BENCH_device.json] [-quick] [-rounds N]
//
// -quick runs every benchmark body once instead of until steady state; CI
// uses it as a non-gating smoke check that the hot paths still execute and
// the baseline still marshals. -rounds sets how many steady-state rounds the
// incr_steady micro averages over per op (first, cache-building round
// excluded).
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"testing"
	"time"

	"reaper/internal/benchfmt"
	"reaper/internal/dram"
	"reaper/internal/patterns"
)

// seedMicro pins the device read-path numbers measured at this PR's base
// commit, before the sparse active-window index: every pass walked the full
// weak population and evaluated the failure CDF per cell, and RestoreAll
// paid ReadCompareAll's fails-slice allocation and sort just to discard them.
var seedMicro = []benchfmt.MicroResult{
	{Name: "read_compare_all@ws10", NsPerOp: 1_398_424, AllocsPerOp: 9, BytesPerOp: 3007},
	{Name: "read_compare_all@ws30", NsPerOp: 6_055_465, AllocsPerOp: 11, BytesPerOp: 8232},
	{Name: "read_compare_all@ws100", NsPerOp: 36_785_451, AllocsPerOp: 14, BytesPerOp: 39592},
	{Name: "read_compare_all_autorefresh@ws30", NsPerOp: 11_361_610, AllocsPerOp: 1, BytesPerOp: 48},
	{Name: "restore_all@ws10", NsPerOp: 1_160_320, AllocsPerOp: 9, BytesPerOp: 2984},
	{Name: "restore_all@ws30", NsPerOp: 5_153_856, AllocsPerOp: 11, BytesPerOp: 8232},
	{Name: "restore_all@ws100", NsPerOp: 37_875_158, AllocsPerOp: 14, BytesPerOp: 39592},
}

func main() {
	out := flag.String("out", "BENCH_device.json", "output path")
	quick := flag.Bool("quick", false, "run each benchmark body once (CI smoke)")
	rounds := flag.Int("rounds", 8, "steady-state rounds per op for the incr_steady micro (>= 2)")
	flag.Parse()
	if *rounds < 2 {
		log.Fatalf("-rounds %d: need at least 2 (one warm round plus one steady round)", *rounds)
	}

	b := benchfmt.NewBaseline()
	b.GeneratedAt = time.Now().UTC().Format(time.RFC3339)
	b.SeedMicro = seedMicro

	for _, ws := range []float64{10, 30, 100} {
		b.Micro = append(b.Micro,
			benchfmt.Micro(fmt.Sprintf("read_compare_all@ws%g", ws),
				measure(*quick, readCompareBody(ws, 0))))
		if ws == 30 {
			b.Micro = append(b.Micro,
				benchfmt.Micro("read_compare_all_autorefresh@ws30",
					measure(*quick, readCompareBody(ws, 0.064))))
		}
		b.Micro = append(b.Micro,
			benchfmt.Micro(fmt.Sprintf("restore_all@ws%g", ws),
				measure(*quick, restoreBody(ws))))
	}

	for _, workers := range []int{1, 2, 4} {
		b.Micro = append(b.Micro,
			benchfmt.Micro(fmt.Sprintf("read_compare_all_banked_w%d@ws30", workers),
				measure(*quick, bankedBody(30, workers))))
	}

	b.Micro = append(b.Micro,
		benchfmt.Micro("incr_round1@ws30", measure(*quick, incrRound1Body(30))))
	steady := benchfmt.Micro("incr_steady@ws30", measure(*quick, incrSteadyBody(30, *rounds)))
	// The body runs rounds-1 steady rounds per op; report per-round cost.
	steady.NsPerOp /= float64(*rounds - 1)
	steady.AllocsPerOp /= int64(*rounds - 1)
	steady.BytesPerOp /= int64(*rounds - 1)
	b.Micro = append(b.Micro, steady)

	b.Micro = append(b.Micro,
		benchfmt.Micro("new_device@ws100", measure(*quick, newDeviceBody(100))),
		benchfmt.Micro("new_device_template@ws100", measure(*quick, newDeviceTemplateBody(100))))

	if err := b.WriteFile(*out); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %s\n", *out)
	for _, m := range b.Micro {
		fmt.Printf("  %-36s %.0f ns/op  %d allocs/op  %d B/op\n",
			m.Name, m.NsPerOp, m.AllocsPerOp, m.BytesPerOp)
	}
	_ = os.Stdout.Sync()
}

// newBenchDevice builds the benchmark chip at the given weak-cell density:
// the same geometry and seed as internal/dram's BenchmarkReadCompareAll.
func newBenchDevice(weakScale, autoRef float64) *dram.Device {
	d, err := dram.NewDevice(dram.Config{
		Geometry:  dram.Geometry{Banks: 8, RowsPerBank: 256, WordsPerRow: 256},
		Vendor:    dram.VendorB(),
		Seed:      7,
		WeakScale: weakScale,
	})
	if err != nil {
		log.Fatal(err)
	}
	if autoRef > 0 {
		d.SetAutoRefresh(autoRef)
	}
	return d
}

// readCompareBody is one full write/wait/read profiling pass per op.
func readCompareBody(weakScale, autoRef float64) func(n int) {
	d := newBenchDevice(weakScale, autoRef)
	ps := []dram.RowData{patterns.Solid1(), patterns.Checkerboard(), patterns.Random(1)}
	now := 0.0
	return func(n int) {
		for i := 0; i < n; i++ {
			d.WriteAll(ps[i%len(ps)], now)
			now += 2.048
			_ = d.ReadCompareAll(now)
			now += 0.5
		}
	}
}

// restoreBody is one write plus a full refresh sweep (no failure collection)
// per op — the path auto-refresh modelling and scrubbing lean on.
func restoreBody(weakScale float64) func(n int) {
	d := newBenchDevice(weakScale, 0)
	ps := []dram.RowData{patterns.Solid1(), patterns.Checkerboard(), patterns.Random(1)}
	now := 0.0
	return func(n int) {
		for i := 0; i < n; i++ {
			d.WriteAll(ps[i%len(ps)], now)
			now += 2.048
			d.RestoreAll(now)
			now += 0.5
		}
	}
}

// bankedBody is one full-classification write/wait/read pass in BankStreams
// mode: a fresh random pattern per op defeats the round cache, so the
// sharded classification is what gets measured.
func bankedBody(weakScale float64, workers int) func(n int) {
	d, err := dram.NewDevice(dram.Config{
		Geometry:    dram.Geometry{Banks: 8, RowsPerBank: 256, WordsPerRow: 256},
		Vendor:      dram.VendorB(),
		Seed:        7,
		WeakScale:   weakScale,
		BankStreams: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	d.SetSweepWorkers(workers)
	now := 0.0
	seq := uint64(0)
	return func(n int) {
		for i := 0; i < n; i++ {
			d.WriteAll(patterns.Random(seq), now)
			seq++
			now += 2.048
			_ = d.ReadCompareAll(now)
			now += 0.5
		}
	}
}

// incrRound1Body is the round-1 cost of a profiling cadence: every op writes
// a pattern the device has not seen, so every sweep classifies the
// population in full (sparse-index cursor, threshold tests, DPD hashes, band
// sort) before sampling.
func incrRound1Body(weakScale float64) func(n int) {
	d := newBenchDevice(weakScale, 0)
	now := 0.0
	seq := uint64(0)
	return func(n int) {
		for i := 0; i < n; i++ {
			d.WriteAll(patterns.Random(seq), now)
			seq++
			now += 2.048
			_ = d.ReadCompareAll(now)
			now += 0.5
		}
	}
}

// incrSteadyBody is the steady-state cost: a fixed pattern at a fixed
// cadence, warmed with one cache-building round, then rounds-1 rounds per op
// that replay the cached classification (only the sampling band draws).
func incrSteadyBody(weakScale float64, rounds int) func(n int) {
	d := newBenchDevice(weakScale, 0)
	pat := patterns.Checkerboard()
	now := 0.0
	d.WriteAll(pat, now)
	now += 2.048
	_ = d.ReadCompareAll(now)
	return func(n int) {
		for i := 0; i < n; i++ {
			for r := 1; r < rounds; r++ {
				d.WriteAll(pat, now)
				now += 2.048
				_ = d.ReadCompareAll(now)
			}
		}
	}
}

// newDeviceBody measures fleet-member construction from the analytic vendor
// distributions; newDeviceTemplateBody amortizes the distribution draws
// through a shared population template (built once, outside the timer).
func newDeviceBody(weakScale float64) func(n int) {
	cfg := dram.Config{
		Geometry:  dram.Geometry{Banks: 8, RowsPerBank: 256, WordsPerRow: 256},
		Vendor:    dram.VendorB(),
		WeakScale: weakScale,
	}
	return func(n int) {
		for i := 0; i < n; i++ {
			cfg.Seed = uint64(i + 1)
			if _, err := dram.NewDevice(cfg); err != nil {
				log.Fatal(err)
			}
		}
	}
}

func newDeviceTemplateBody(weakScale float64) func(n int) {
	cfg := dram.Config{
		Geometry:  dram.Geometry{Banks: 8, RowsPerBank: 256, WordsPerRow: 256},
		Vendor:    dram.VendorB(),
		WeakScale: weakScale,
	}
	tpl, err := dram.NewPopulationTemplate(cfg, 1<<16, 99)
	if err != nil {
		log.Fatal(err)
	}
	return func(n int) {
		for i := 0; i < n; i++ {
			cfg.Seed = uint64(i + 1)
			if _, err := dram.NewDeviceFromTemplate(tpl, cfg); err != nil {
				log.Fatal(err)
			}
		}
	}
}

// measure times body until steady state via testing.Benchmark, or exactly
// once in quick mode (alloc figures are only meaningful in full mode).
func measure(quick bool, body func(n int)) testing.BenchmarkResult {
	if quick {
		start := time.Now()
		body(1)
		return testing.BenchmarkResult{N: 1, T: time.Since(start)}
	}
	return testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		b.ResetTimer()
		body(b.N)
	})
}
