// Command reaperlint runs the repository's determinism-and-safety analyzer
// suite (internal/lint) over the module and fails on any unsuppressed
// finding. It is wired into `make check` and CI, so the reproducibility
// invariants behind every pinned figure and golden snapshot are
// machine-checked on every change.
//
// Usage:
//
//	reaperlint [-rules list] [-md] [-v] [-json file] [-github] [packages...]
//
// Package patterns are module-relative directories; "./..." (the default)
// scans the whole module. Test files and testdata are excluded from the
// analyzers (stale-suppression still inspects _test.go directives). -md
// additionally verifies that every relative link in the module's markdown
// docs resolves to a real file.
//
// -json writes a stable machine-readable report (sorted findings with
// rule/file/line/col/message plus the suppressions that fired) to the given
// file, atomically, or to stdout with "-". -github additionally prints one
// GitHub Actions ::error workflow command per finding so CI annotates the
// offending lines in the pull-request diff.
//
// Findings print as
//
//	file:line:col: [rule] message
//
// and suppressed findings (//lint:ignore rule reason) are counted in the
// summary. Exit status: 0 clean, 1 findings, 2 load/usage errors.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"reaper/internal/lint"
)

func main() {
	rules := flag.String("rules", "", "comma-separated subset of rules to run (default: all)")
	md := flag.Bool("md", false, "also check relative links in the module's markdown docs")
	verbose := flag.Bool("v", false, "list every suppression with its justification")
	jsonPath := flag.String("json", "", "write a stable JSON report to this file (\"-\" = stdout)")
	github := flag.Bool("github", false, "print GitHub Actions ::error annotations for findings")
	flag.Parse()

	status := run(*rules, *md, *verbose, *jsonPath, *github, flag.Args())
	os.Exit(status)
}

func run(rules string, md, verbose bool, jsonPath string, github bool, patterns []string) int {
	wd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "reaperlint:", err)
		return 2
	}
	loader, err := lint.NewLoader(wd)
	if err != nil {
		fmt.Fprintln(os.Stderr, "reaperlint:", err)
		return 2
	}

	analyzers := lint.Analyzers()
	if rules != "" {
		analyzers = analyzers[:0]
		for _, name := range strings.Split(rules, ",") {
			a := lint.ByName(strings.TrimSpace(name))
			if a == nil {
				fmt.Fprintf(os.Stderr, "reaperlint: unknown rule %q (have:", name)
				for _, known := range lint.Analyzers() {
					fmt.Fprintf(os.Stderr, " %s", known.Name)
				}
				fmt.Fprintln(os.Stderr, ")")
				return 2
			}
			analyzers = append(analyzers, a)
		}
	}

	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	seen := map[string]bool{}
	var pkgs []*lint.Package
	for _, pat := range patterns {
		loaded, err := load(loader, pat)
		if err != nil {
			fmt.Fprintln(os.Stderr, "reaperlint:", err)
			return 2
		}
		for _, p := range loaded {
			if !seen[p.Path] {
				seen[p.Path] = true
				pkgs = append(pkgs, p)
			}
		}
	}

	res := lint.Run(pkgs, analyzers)
	if md {
		mdFindings, err := lint.CheckMarkdownLinks(loader.Root)
		if err != nil {
			fmt.Fprintln(os.Stderr, "reaperlint:", err)
			return 2
		}
		res.Findings = append(res.Findings, mdFindings...)
	}
	for _, f := range res.Findings {
		fmt.Println(rel(loader.Root, f))
	}
	if jsonPath != "" || github {
		rep := buildReport(loader.Root, res, analyzers, len(pkgs))
		if github {
			emitGitHub(rep)
		}
		if jsonPath != "" {
			if err := writeJSON(jsonPath, rep); err != nil {
				fmt.Fprintln(os.Stderr, "reaperlint:", err)
				return 2
			}
		}
	}
	if verbose {
		for _, s := range res.Suppressions {
			pos := s.Pos
			if r, err := filepath.Rel(loader.Root, pos.Filename); err == nil {
				pos.Filename = r
			}
			label := "suppressed"
			if !s.Used() {
				// Present but silenced nothing in this run (rule filtered
				// out by -rules, or the guarded code no longer trips it).
				label = "directive (unused)"
			}
			fmt.Fprintf(os.Stderr, "%s %s:%d: [%s] %s\n", label, pos.Filename, pos.Line, s.Rule, s.Reason)
		}
	}
	total := 0
	for _, n := range res.Suppressed {
		total += n
	}
	fmt.Fprintf(os.Stderr, "reaperlint: %d package(s), %d finding(s), %d suppressed\n",
		len(pkgs), len(res.Findings), total)
	if len(res.Findings) > 0 {
		return 1
	}
	return 0
}

// load resolves one package pattern: "dir/..." scans a subtree, a plain
// directory loads a single package.
func load(loader *lint.Loader, pat string) ([]*lint.Package, error) {
	if rest, ok := strings.CutSuffix(pat, "/..."); ok {
		if rest == "." || rest == "" {
			return loader.LoadAll()
		}
		return loader.LoadUnder(rest)
	}
	p, err := loader.LoadDir(pat)
	if err != nil {
		return nil, err
	}
	return []*lint.Package{p}, nil
}

func rel(root string, f lint.Finding) string {
	if r, err := filepath.Rel(root, f.Pos.Filename); err == nil {
		f.Pos.Filename = r
	}
	return f.String()
}
