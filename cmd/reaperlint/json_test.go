package main

import (
	"encoding/json"
	"go/token"
	"reflect"
	"testing"

	"reaper/internal/lint"
)

func sampleResult() lint.Result {
	mk := func(file string, line int, rule, msg string) lint.Finding {
		return lint.Finding{
			Pos:     token.Position{Filename: file, Line: line, Column: 3},
			Rule:    rule,
			Message: msg,
		}
	}
	return lint.Result{
		Findings: []lint.Finding{
			mk("/mod/internal/b/b.go", 10, "no-panic", "second"),
			mk("/mod/internal/a/a.go", 20, "map-order", "third by file"),
			mk("/mod/internal/a/a.go", 5, "no-panic", "first"),
		},
		Suppressed: map[string]int{},
	}
}

// TestBuildReportStable pins the artifact contract: module-relative
// slash-separated paths, (file, line, rule) ordering, and byte-identical
// output across repeated runs over the same result.
func TestBuildReportStable(t *testing.T) {
	res := sampleResult()
	rep := buildReport("/mod", res, lint.Analyzers(), 3)

	var files []string
	for _, f := range rep.Findings {
		files = append(files, f.File)
	}
	want := []string{"internal/a/a.go", "internal/a/a.go", "internal/b/b.go"}
	if !reflect.DeepEqual(files, want) {
		t.Errorf("finding files = %v, want %v", files, want)
	}
	if rep.Findings[0].Line != 5 || rep.Findings[1].Line != 20 {
		t.Errorf("findings not line-ordered within a file: %+v", rep.Findings)
	}
	if rep.FindingN != 3 || rep.PackageN != 3 {
		t.Errorf("counts = (%d findings, %d packages), want (3, 3)", rep.FindingN, rep.PackageN)
	}

	a, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(buildReport("/mod", res, lint.Analyzers(), 3))
	if err != nil {
		t.Fatal(err)
	}
	if string(a) != string(b) {
		t.Error("repeated buildReport calls are not byte-identical")
	}
}

// TestBuildReportCleanRun pins that a clean run keeps both list keys as
// empty arrays (not nulls) so downstream consumers need no nil checks.
func TestBuildReportCleanRun(t *testing.T) {
	rep := buildReport("/mod", lint.Result{Suppressed: map[string]int{}}, lint.Analyzers(), 1)
	data, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	var decoded map[string]any
	if err := json.Unmarshal(data, &decoded); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"findings", "suppressed"} {
		if _, ok := decoded[key].([]any); !ok {
			t.Errorf("%s is %T, want an (empty) array", key, decoded[key])
		}
	}
}
