package main

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"reaper/internal/checkpoint"
	"reaper/internal/lint"
)

// jsonFinding is one finding in the machine-readable report.
type jsonFinding struct {
	Rule    string `json:"rule"`
	File    string `json:"file"` // module-relative, slash-separated
	Line    int    `json:"line"`
	Col     int    `json:"col"`
	Message string `json:"message"`
}

// jsonSuppression is one //lint:ignore (or //lint:serialized-elsewhere
// waiver is reported by its rule) directive that silenced a finding.
type jsonSuppression struct {
	Rule   string `json:"rule"`
	File   string `json:"file"`
	Line   int    `json:"line"`
	Reason string `json:"reason"`
}

// jsonReport is the -json output schema. Both lists are sorted by
// (file, line, rule) so repeated runs over an unchanged tree are
// byte-identical — the report can be diffed and archived like any other
// artifact of this repository.
type jsonReport struct {
	Findings    []jsonFinding     `json:"findings"`
	Suppressed  []jsonSuppression `json:"suppressed"`
	RulesRun    []string          `json:"rules_run"`
	PackageN    int               `json:"packages"`
	FindingN    int               `json:"finding_count"`
	SuppressedN int               `json:"suppressed_count"`
}

// relSlash rewrites an absolute path module-relative with forward slashes,
// so reports produced on different machines (or in CI) compare equal.
func relSlash(root, path string) string {
	if r, err := filepath.Rel(root, path); err == nil {
		return filepath.ToSlash(r)
	}
	return filepath.ToSlash(path)
}

// buildReport assembles the stable report from a run.
func buildReport(root string, res lint.Result, analyzers []*lint.Analyzer, packages int) jsonReport {
	rep := jsonReport{
		// Empty slices, not nulls: a clean run still has both keys.
		Findings:   []jsonFinding{},
		Suppressed: []jsonSuppression{},
		PackageN:   packages,
	}
	for _, a := range analyzers {
		rep.RulesRun = append(rep.RulesRun, a.Name)
	}
	sort.Strings(rep.RulesRun)
	for _, f := range res.Findings {
		rep.Findings = append(rep.Findings, jsonFinding{
			Rule:    f.Rule,
			File:    relSlash(root, f.Pos.Filename),
			Line:    f.Pos.Line,
			Col:     f.Pos.Column,
			Message: f.Message,
		})
	}
	for _, s := range res.Suppressions {
		if !s.Used() {
			continue
		}
		rep.Suppressed = append(rep.Suppressed, jsonSuppression{
			Rule:   s.Rule,
			File:   relSlash(root, s.Pos.Filename),
			Line:   s.Pos.Line,
			Reason: s.Reason,
		})
	}
	sortKey := func(file string, line int, rule string) string {
		return fmt.Sprintf("%s\x00%08d\x00%s", file, line, rule)
	}
	sort.Slice(rep.Findings, func(i, j int) bool {
		a, b := rep.Findings[i], rep.Findings[j]
		return sortKey(a.File, a.Line, a.Rule) < sortKey(b.File, b.Line, b.Rule)
	})
	sort.Slice(rep.Suppressed, func(i, j int) bool {
		a, b := rep.Suppressed[i], rep.Suppressed[j]
		return sortKey(a.File, a.Line, a.Rule) < sortKey(b.File, b.Line, b.Rule)
	})
	rep.FindingN = len(rep.Findings)
	rep.SuppressedN = len(rep.Suppressed)
	return rep
}

// writeJSON emits the report to path ("-" = stdout). Files are written
// through checkpoint.WriteFileAtomic like every other artifact, so a killed
// CI job never leaves a truncated report for the uploader to archive.
func writeJSON(path string, rep jsonReport) error {
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if path == "-" {
		_, err := os.Stdout.Write(data)
		return err
	}
	return checkpoint.WriteFileAtomic(path, data, 0o644)
}

// emitGitHub prints one GitHub Actions workflow command per finding, so the
// findings annotate the offending lines directly in the pull-request diff.
func emitGitHub(rep jsonReport) {
	for _, f := range rep.Findings {
		// "::error file={file},line={line},col={col}::{message}"; the
		// message must stay on one line (our findings always are).
		fmt.Printf("::error file=%s,line=%d,col=%d::[%s] %s\n", f.File, f.Line, f.Col, f.Rule, f.Message)
	}
}
