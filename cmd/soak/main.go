// Command soak runs a long-horizon fault-injection campaign against a fleet
// of simulated chips operating at an extended refresh interval, with the
// firmware resilience controller defending the ECC budget (or not, with
// -baseline), and emits a JSON survival report.
//
// Exit status: 0 when every chip's cumulative UBER stays within -max-uber,
// 1 when the fleet violates it, 2 on configuration or runtime errors.
//
// Usage:
//
//	soak [-chips N] [-hours H] [-window H] [-seed S] [-workers N]
//	     [-target ms] [-max-uber F] [-baseline] [-quick]
//	     [-scenario default|quiet|harsh] [-out file.json]
//	     [-metrics-out file.json] [-trace-out file.jsonl]
//	     [-pprof-addr host:port] [-cpuprofile file] [-heapprofile file]
//
// -metrics-out and -trace-out opt the campaign into the deterministic
// telemetry layer (see OBSERVABILITY.md): the metrics snapshot is
// byte-identical at any -workers count for a fixed seed. -pprof-addr,
// -cpuprofile, and -heapprofile observe the host process, not the
// simulation.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"sort"
	"strings"

	"reaper/internal/experiments"
	"reaper/internal/faultinject"
	"reaper/internal/parallel"
	"reaper/internal/telemetry"
)

// scenarios names the fault-injection presets -scenario accepts. Each entry
// derives from faultinject.DefaultScenario (with the same seed split the
// soak harness uses, so "default" is bit-identical to passing no flag) and
// scales the hazard rates.
var scenarios = map[string]func(seed uint64, targetInterval float64) *faultinject.Scenario{
	// The standard soak hazards, unchanged.
	"default": func(uint64, float64) *faultinject.Scenario { return nil },
	// Half-rate hazards and no round aborts: a benign deployment.
	"quiet": func(seed uint64, target float64) *faultinject.Scenario {
		sc := faultinject.DefaultScenario(seed, target)
		sc.VRTBurstMeanHours *= 2
		sc.DPDFlipMeanHours *= 2
		sc.TempExcursionMeanHours *= 2
		sc.WeakArrivalPerHour /= 2
		sc.RoundAbortProb = 0
		return &sc
	},
	// Double-rate hazards, hotter excursions, frequent aborts: a hostile
	// thermal environment.
	"harsh": func(seed uint64, target float64) *faultinject.Scenario {
		sc := faultinject.DefaultScenario(seed, target)
		sc.VRTBurstMeanHours /= 2
		sc.DPDFlipMeanHours /= 2
		sc.TempExcursionMeanHours /= 2
		sc.TempExcursionPeakC += 4
		sc.WeakArrivalPerHour *= 2
		sc.RoundAbortProb = 0.25
		return &sc
	},
}

func scenarioNames() string {
	names := make([]string, 0, len(scenarios))
	for name := range scenarios {
		names = append(names, name)
	}
	sort.Strings(names)
	return strings.Join(names, ", ")
}

// main delegates to run so deferred cleanups (CPU profile stop, pprof
// server shutdown) execute before the process exits with a status code.
func main() { os.Exit(run()) }

func run() int {
	chips := flag.Int("chips", 4, "fleet size")
	hours := flag.Float64("hours", 14*24, "soak horizon, simulated hours")
	window := flag.Float64("window", 1, "scrub window, hours")
	seed := flag.Uint64("seed", 1, "campaign seed (report is bit-identical per seed)")
	workers := flag.Int("workers", parallel.DefaultWorkers(),
		"fleet worker pool size (results are identical at any count)")
	targetMs := flag.Float64("target", 1024, "extended refresh interval, ms")
	maxUBER := flag.Float64("max-uber", 1e-4, "survival criterion: max cumulative UBER")
	baseline := flag.Bool("baseline", false, "disable the resilience controller (open-loop baseline)")
	quick := flag.Bool("quick", false, "short deterministic soak (2 chips, 48 hours)")
	scenario := flag.String("scenario", "default",
		"named fault scenario: "+scenarioNames())
	out := flag.String("out", "", "write the JSON report to this file (default stdout)")
	metricsOut := flag.String("metrics-out", "", "write the telemetry metrics snapshot (JSON) to this file")
	traceOut := flag.String("trace-out", "", "write the merged trace timeline (JSONL) to this file")
	pprofAddr := flag.String("pprof-addr", "", "serve net/http/pprof and /metrics on this address (e.g. localhost:6060)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile of the host process to this file")
	heapprofile := flag.String("heapprofile", "", "write a heap profile of the host process to this file")
	flag.Parse()

	if *workers < 1 {
		log.Printf("soak: -workers must be >= 1 (got %d)", *workers)
		return 2
	}
	mkScenario, ok := scenarios[*scenario]
	if !ok {
		log.Printf("soak: unknown scenario %q; valid scenarios: %s", *scenario, scenarioNames())
		return 2
	}

	var reg *telemetry.Registry
	if *metricsOut != "" || *traceOut != "" || *pprofAddr != "" {
		reg = telemetry.New()
	}
	if *pprofAddr != "" {
		srv, err := telemetry.StartServer(*pprofAddr, reg)
		if err != nil {
			log.Println(err)
			return 2
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "soak: pprof and /metrics on http://%s\n", srv.Addr())
	}
	if *cpuprofile != "" {
		stop, err := telemetry.StartCPUProfile(*cpuprofile)
		if err != nil {
			log.Println(err)
			return 2
		}
		defer func() {
			if err := stop(); err != nil {
				log.Println(err)
			}
		}()
	}

	cfg := experiments.DefaultSoakConfig(*seed)
	cfg.Chips = *chips
	cfg.Hours = *hours
	cfg.WindowHours = *window
	cfg.Workers = *workers
	cfg.TargetInterval = *targetMs / 1000
	cfg.MaxUBER = *maxUBER
	cfg.Controller = !*baseline
	// The seed split matches the harness's own default-scenario derivation,
	// so -scenario default is bit-identical to omitting the flag.
	cfg.Scenario = mkScenario(*seed^0xFA177, cfg.TargetInterval)
	cfg.Telemetry = reg
	if *quick {
		cfg.Chips = 2
		cfg.Hours = 48
	}

	rep, err := experiments.Soak(context.Background(), cfg)
	if err != nil {
		log.Println(err)
		return 2
	}

	controller := "resilience controller ON"
	if !rep.Controller {
		controller = "open-loop baseline (controller OFF)"
	}
	fmt.Fprintf(os.Stderr, "soak: %d chips x %.0f h at %.0f ms, %s\n",
		rep.Chips, rep.Hours, rep.TargetInterval*1000, controller)
	for _, c := range rep.ChipReports {
		fmt.Fprintf(os.Stderr,
			"  chip %d: UBER %.3g (max %.3g), %d/%d UE windows, %d rounds (%d early, %d aborted), "+
				"final interval %.0f ms, %.0f%% time extended\n",
			c.Chip, c.UBER, rep.MaxUBER, c.ViolationWindows, c.Windows,
			c.Rounds, c.EarlyRounds, c.Aborts, c.FinalIntervalMs, c.ExtendedFraction*100)
	}
	verdict := "SURVIVED"
	if !rep.Survived {
		verdict = "VIOLATED"
	}
	fmt.Fprintf(os.Stderr, "fleet %s: worst UBER %.3g vs budget %.3g, %.0f%% mean time at extended interval\n",
		verdict, rep.WorstUBER, rep.MaxUBER, rep.MeanExtendedFraction*100)

	enc, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		log.Println(err)
		return 2
	}
	enc = append(enc, '\n')
	if *out != "" {
		if err := os.WriteFile(*out, enc, 0o644); err != nil {
			log.Println(err)
			return 2
		}
	} else {
		os.Stdout.Write(enc)
	}
	if *metricsOut != "" {
		f, err := os.Create(*metricsOut)
		if err == nil {
			err = rep.Telemetry.WriteJSON(f)
			if cerr := f.Close(); err == nil {
				err = cerr
			}
		}
		if err != nil {
			log.Println(err)
			return 2
		}
	}
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err == nil {
			err = telemetry.WriteJSONL(f, rep.TraceEvents)
			if cerr := f.Close(); err == nil {
				err = cerr
			}
		}
		if err != nil {
			log.Println(err)
			return 2
		}
	}
	if *heapprofile != "" {
		if err := telemetry.WriteHeapProfile(*heapprofile); err != nil {
			log.Println(err)
			return 2
		}
	}
	if !rep.Survived {
		return 1
	}
	return 0
}
