// Command soak runs a long-horizon fault-injection campaign against a fleet
// of simulated chips operating at an extended refresh interval, with the
// firmware resilience controller defending the ECC budget (or not, with
// -baseline), and emits a JSON survival report.
//
// Exit status (uniform across the reaper tools, see OBSERVABILITY.md):
// 0 when every chip's cumulative UBER stays within -max-uber, 1 when the
// fleet violates it, 2 on configuration or runtime errors, 3 when the
// campaign completed but one or more chip shards were quarantined after
// exhausting -shard-attempts (the report covers the surviving chips and
// sets partial_coverage), 4 when a checkpointed campaign was interrupted
// (SIGINT/SIGTERM or -stop-after-checkpoints) at a segment barrier — the
// checkpoint directory holds a complete snapshot; rerun with -resume.
//
// Usage:
//
//	soak [-chips N] [-hours H] [-window H] [-seed S] [-workers N]
//	     [-shard-size N] [-target ms] [-max-uber F] [-baseline] [-quick]
//	     [-scenario default|quiet|harsh] [-out file.json]
//	     [-checkpoint-dir dir] [-resume] [-checkpoint-every N]
//	     [-stop-after-checkpoints N] [-shard-attempts N]
//	     [-metrics-out file.json] [-trace-out file.jsonl]
//	     [-pprof-addr host:port] [-cpuprofile file] [-heapprofile file]
//
// -checkpoint-dir enables crash-safe execution: the campaign state is
// snapshotted atomically every -checkpoint-every scrub windows, SIGINT and
// SIGTERM finish the in-flight segment, save a final checkpoint, and exit
// with status 4, and -resume continues a prior campaign from its newest
// intact checkpoint — the final report is byte-identical to an
// uninterrupted run (see DESIGN.md section 8).
//
// -metrics-out and -trace-out opt the campaign into the deterministic
// telemetry layer (see OBSERVABILITY.md): the metrics snapshot is
// byte-identical at any -workers count for a fixed seed. -pprof-addr,
// -cpuprofile, and -heapprofile observe the host process, not the
// simulation.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"reaper/internal/checkpoint"
	"reaper/internal/exitcode"
	"reaper/internal/experiments"
	"reaper/internal/faultinject"
	"reaper/internal/parallel"
	"reaper/internal/telemetry"
)

// The fault-injection presets -scenario accepts live in
// internal/faultinject (NamedScenario), shared with the test-program
// "soak" stage so a scenario named in a JSON program is bit-identical to
// the same name on this command line.
func scenarioNames() string {
	return strings.Join(faultinject.ScenarioNames(), ", ")
}

// main delegates to run so deferred cleanups (CPU profile stop, pprof
// server shutdown) execute before the process exits with a status code.
func main() { os.Exit(run()) }

func run() int {
	chips := flag.Int("chips", 4, "fleet size")
	hours := flag.Float64("hours", 14*24, "soak horizon, simulated hours")
	window := flag.Float64("window", 1, "scrub window, hours")
	seed := flag.Uint64("seed", 1, "campaign seed (report is bit-identical per seed)")
	workers := flag.Int("workers", parallel.DefaultWorkers(),
		"fleet worker pool size (results are identical at any count)")
	shardSize := flag.Int("shard-size", 0,
		"max chips holding dense simulator state at once (0 = no bound); results are identical at any value")
	targetMs := flag.Float64("target", 1024, "extended refresh interval, ms")
	maxUBER := flag.Float64("max-uber", 1e-4, "survival criterion: max cumulative UBER")
	baseline := flag.Bool("baseline", false, "disable the resilience controller (open-loop baseline)")
	quick := flag.Bool("quick", false, "short deterministic soak (2 chips, 48 hours)")
	scenario := flag.String("scenario", "default",
		"named fault scenario: "+scenarioNames())
	out := flag.String("out", "", "write the JSON report to this file (default stdout)")
	checkpointDir := flag.String("checkpoint-dir", "",
		"enable crash-safe checkpointing into this directory")
	resume := flag.Bool("resume", false,
		"resume the campaign from the newest intact checkpoint in -checkpoint-dir")
	checkpointEvery := flag.Int("checkpoint-every", experiments.DefaultCheckpointEveryWindows,
		"scrub windows between checkpoint barriers")
	stopAfter := flag.Int("stop-after-checkpoints", 0,
		"stop with a resumable exit after saving N checkpoints in this process (0 = run to completion; for drills and tests)")
	shardAttempts := flag.Int("shard-attempts", 0,
		"attempts per chip shard before quarantining it (0 = first failure aborts the campaign)")
	metricsOut := flag.String("metrics-out", "", "write the telemetry metrics snapshot (JSON) to this file")
	traceOut := flag.String("trace-out", "", "write the merged trace timeline (JSONL) to this file")
	pprofAddr := flag.String("pprof-addr", "", "serve net/http/pprof and /metrics on this address (e.g. localhost:6060)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile of the host process to this file")
	heapprofile := flag.String("heapprofile", "", "write a heap profile of the host process to this file")
	flag.Parse()

	if *workers < 1 {
		log.Printf("soak: -workers must be >= 1 (got %d)", *workers)
		return exitcode.ConfigError
	}
	if *chips < 1 {
		log.Printf("soak: -chips must be >= 1 (got %d)", *chips)
		return exitcode.ConfigError
	}
	if *shardSize < 0 {
		log.Printf("soak: -shard-size must be >= 0 (got %d)", *shardSize)
		return exitcode.ConfigError
	}
	// The seed split matches the harness's own default-scenario derivation,
	// so -scenario default is bit-identical to omitting the flag.
	scenarioOverride, err := faultinject.NamedScenario(*scenario, *seed^0xFA177, *targetMs/1000)
	if err != nil {
		log.Printf("soak: unknown scenario %q; valid scenarios: %s", *scenario, scenarioNames())
		return exitcode.ConfigError
	}
	if *resume && *checkpointDir == "" {
		log.Printf("soak: -resume requires -checkpoint-dir")
		return exitcode.ConfigError
	}
	if *shardAttempts < 0 {
		log.Printf("soak: -shard-attempts must be >= 0 (got %d)", *shardAttempts)
		return exitcode.ConfigError
	}

	var reg *telemetry.Registry
	if *metricsOut != "" || *traceOut != "" || *pprofAddr != "" {
		reg = telemetry.New()
	}
	if *pprofAddr != "" {
		srv, err := telemetry.StartServer(*pprofAddr, reg)
		if err != nil {
			log.Println(err)
			return exitcode.ConfigError
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "soak: pprof and /metrics on http://%s\n", srv.Addr())
	}
	if *cpuprofile != "" {
		stop, err := telemetry.StartCPUProfile(*cpuprofile)
		if err != nil {
			log.Println(err)
			return exitcode.ConfigError
		}
		defer func() {
			if err := stop(); err != nil {
				log.Println(err)
			}
		}()
	}

	cfg := experiments.DefaultSoakConfig(*seed)
	cfg.Chips = *chips
	cfg.Hours = *hours
	cfg.WindowHours = *window
	cfg.Workers = *workers
	cfg.ShardSize = *shardSize
	cfg.TargetInterval = *targetMs / 1000
	cfg.MaxUBER = *maxUBER
	cfg.Controller = !*baseline
	cfg.Scenario = scenarioOverride
	cfg.Telemetry = reg
	if *quick {
		cfg.Chips = 2
		cfg.Hours = 48
	}
	if *shardAttempts > 0 {
		cfg.ShardPolicy = parallel.RetryPolicy{Attempts: *shardAttempts}
	}
	if *checkpointDir != "" {
		// SIGINT/SIGTERM request a graceful stop through a separate signal
		// context: the in-flight segment completes, the final checkpoint is
		// saved at the barrier, and only then does the campaign return
		// ErrInterrupted. The run context stays uncancelled so no shard is
		// aborted mid-window.
		sigCtx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
		defer stopSignals()
		cfg.Checkpoint = &experiments.CheckpointOptions{
			Dir:               *checkpointDir,
			EveryWindows:      *checkpointEvery,
			Resume:            *resume,
			StopAfterSegments: *stopAfter,
			ShouldStop:        func() bool { return sigCtx.Err() != nil },
		}
	}

	rep, err := experiments.Soak(context.Background(), cfg)
	if errors.Is(err, experiments.ErrInterrupted) {
		fmt.Fprintf(os.Stderr, "soak: interrupted; checkpoint saved in %s; rerun with -resume to continue\n",
			*checkpointDir)
		return exitcode.Interrupted
	}
	if err != nil {
		log.Println(err)
		return exitcode.ConfigError
	}

	controller := "resilience controller ON"
	if !rep.Controller {
		controller = "open-loop baseline (controller OFF)"
	}
	fmt.Fprintf(os.Stderr, "soak: %d chips x %.0f h at %.0f ms, %s\n",
		rep.Chips, rep.Hours, rep.TargetInterval*1000, controller)
	for _, c := range rep.ChipReports {
		fmt.Fprintf(os.Stderr,
			"  chip %d: UBER %.3g (max %.3g), %d/%d UE windows, %d rounds (%d early, %d aborted), "+
				"final interval %.0f ms, %.0f%% time extended\n",
			c.Chip, c.UBER, rep.MaxUBER, c.ViolationWindows, c.Windows,
			c.Rounds, c.EarlyRounds, c.Aborts, c.FinalIntervalMs, c.ExtendedFraction*100)
	}
	for _, q := range rep.Quarantined {
		fmt.Fprintf(os.Stderr, "  chip %d QUARANTINED after %d attempts: %s\n",
			q.Chip, q.Attempts, q.Reason)
	}
	verdict := "SURVIVED"
	if !rep.Survived {
		verdict = "VIOLATED"
	}
	if rep.PartialCoverage {
		verdict += " (partial coverage)"
	}
	fmt.Fprintf(os.Stderr, "fleet %s: worst UBER %.3g vs budget %.3g, %.0f%% mean time at extended interval\n",
		verdict, rep.WorstUBER, rep.MaxUBER, rep.MeanExtendedFraction*100)

	enc, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		log.Println(err)
		return exitcode.ConfigError
	}
	enc = append(enc, '\n')
	if *out != "" {
		if err := checkpoint.WriteFileAtomic(*out, enc, 0o644); err != nil {
			log.Println(err)
			return exitcode.ConfigError
		}
	} else {
		os.Stdout.Write(enc)
	}
	if *metricsOut != "" {
		var buf bytes.Buffer
		err := rep.Telemetry.WriteJSON(&buf)
		if err == nil {
			err = checkpoint.WriteFileAtomic(*metricsOut, buf.Bytes(), 0o644)
		}
		if err != nil {
			log.Println(err)
			return exitcode.ConfigError
		}
	}
	if *traceOut != "" {
		var buf bytes.Buffer
		err := telemetry.WriteJSONL(&buf, rep.TraceEvents)
		if err == nil {
			err = checkpoint.WriteFileAtomic(*traceOut, buf.Bytes(), 0o644)
		}
		if err != nil {
			log.Println(err)
			return exitcode.ConfigError
		}
	}
	if *heapprofile != "" {
		if err := telemetry.WriteHeapProfile(*heapprofile); err != nil {
			log.Println(err)
			return exitcode.ConfigError
		}
	}
	if !rep.Survived {
		return exitcode.Violated
	}
	if rep.PartialCoverage {
		return exitcode.PartialCoverage
	}
	return exitcode.OK
}
