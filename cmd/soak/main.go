// Command soak runs a long-horizon fault-injection campaign against a fleet
// of simulated chips operating at an extended refresh interval, with the
// firmware resilience controller defending the ECC budget (or not, with
// -baseline), and emits a JSON survival report.
//
// Exit status: 0 when every chip's cumulative UBER stays within -max-uber,
// 1 when the fleet violates it, 2 on configuration or runtime errors.
//
// Usage:
//
//	soak [-chips N] [-hours H] [-window H] [-seed S] [-workers N]
//	     [-target ms] [-max-uber F] [-baseline] [-quick] [-out file.json]
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"

	"reaper/internal/experiments"
	"reaper/internal/parallel"
)

func main() {
	chips := flag.Int("chips", 4, "fleet size")
	hours := flag.Float64("hours", 14*24, "soak horizon, simulated hours")
	window := flag.Float64("window", 1, "scrub window, hours")
	seed := flag.Uint64("seed", 1, "campaign seed (report is bit-identical per seed)")
	workers := flag.Int("workers", parallel.DefaultWorkers(),
		"fleet worker pool size (results are identical at any count)")
	targetMs := flag.Float64("target", 1024, "extended refresh interval, ms")
	maxUBER := flag.Float64("max-uber", 1e-4, "survival criterion: max cumulative UBER")
	baseline := flag.Bool("baseline", false, "disable the resilience controller (open-loop baseline)")
	quick := flag.Bool("quick", false, "short deterministic soak (2 chips, 48 hours)")
	out := flag.String("out", "", "write the JSON report to this file (default stdout)")
	flag.Parse()

	cfg := experiments.DefaultSoakConfig(*seed)
	cfg.Chips = *chips
	cfg.Hours = *hours
	cfg.WindowHours = *window
	cfg.Workers = *workers
	cfg.TargetInterval = *targetMs / 1000
	cfg.MaxUBER = *maxUBER
	cfg.Controller = !*baseline
	if *quick {
		cfg.Chips = 2
		cfg.Hours = 48
	}

	rep, err := experiments.Soak(context.Background(), cfg)
	if err != nil {
		log.Println(err)
		os.Exit(2)
	}

	controller := "resilience controller ON"
	if !rep.Controller {
		controller = "open-loop baseline (controller OFF)"
	}
	fmt.Fprintf(os.Stderr, "soak: %d chips x %.0f h at %.0f ms, %s\n",
		rep.Chips, rep.Hours, rep.TargetInterval*1000, controller)
	for _, c := range rep.ChipReports {
		fmt.Fprintf(os.Stderr,
			"  chip %d: UBER %.3g (max %.3g), %d/%d UE windows, %d rounds (%d early, %d aborted), "+
				"final interval %.0f ms, %.0f%% time extended\n",
			c.Chip, c.UBER, rep.MaxUBER, c.ViolationWindows, c.Windows,
			c.Rounds, c.EarlyRounds, c.Aborts, c.FinalIntervalMs, c.ExtendedFraction*100)
	}
	verdict := "SURVIVED"
	if !rep.Survived {
		verdict = "VIOLATED"
	}
	fmt.Fprintf(os.Stderr, "fleet %s: worst UBER %.3g vs budget %.3g, %.0f%% mean time at extended interval\n",
		verdict, rep.WorstUBER, rep.MaxUBER, rep.MeanExtendedFraction*100)

	enc, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		log.Println(err)
		os.Exit(2)
	}
	enc = append(enc, '\n')
	if *out != "" {
		if err := os.WriteFile(*out, enc, 0o644); err != nil {
			log.Println(err)
			os.Exit(2)
		}
	} else {
		os.Stdout.Write(enc)
	}
	if !rep.Survived {
		os.Exit(1)
	}
}
