// Command benchparallel measures the repository's parallel fleet engine and
// device read-path hot paths and writes a machine-readable baseline to
// BENCH_parallel.json (schema: internal/benchfmt): sequential vs parallel
// wall-clock for the population and tradeoff sweeps and for per-bank
// intra-chip sharding on one BankStreams device (banks_parallel), plus
// ReadCompareAll microbenchmark numbers. The JSON seeds the repo's perf
// trajectory — future PRs append comparable runs.
//
// Usage:
//
//	benchparallel [-out BENCH_parallel.json] [-workers N]
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"runtime"
	"testing"
	"time"

	"reaper/internal/benchfmt"
	"reaper/internal/dram"
	"reaper/internal/experiments"
	"reaper/internal/parallel"
	"reaper/internal/patterns"
)

// seedMicro holds the device read-path numbers measured at the seed commit,
// before the row-state hoisting and neighbourhood-code caching rewrite.
var seedMicro = []benchfmt.MicroResult{
	{Name: "read_compare_all", NsPerOp: 7_890_246, AllocsPerOp: 13, BytesPerOp: 8288},
	{Name: "read_compare_all_autorefresh", NsPerOp: 8_631_234, AllocsPerOp: 1, BytesPerOp: 48},
}

func main() {
	out := flag.String("out", "BENCH_parallel.json", "output path")
	workers := flag.Int("workers", parallel.DefaultWorkers(), "parallel worker count to measure")
	flag.Parse()

	// Oversubscribing the CPUs only measures scheduler churn, not the
	// engine: clamp the measured worker count so the recorded speedup is
	// the achievable one for this host.
	if ncpu := runtime.NumCPU(); *workers > ncpu {
		fmt.Printf("clamping -workers %d to %d (NumCPU)\n", *workers, ncpu)
		*workers = ncpu
	}

	b := benchfmt.NewBaseline()
	b.GeneratedAt = time.Now().UTC().Format(time.RFC3339)
	b.SeedMicro = seedMicro

	b.Sweeps = append(b.Sweeps, measureSweep("population_sweep", *workers, func(w int) error {
		cfg := experiments.DefaultPopulationConfig()
		cfg.Workers = w
		_, err := experiments.PopulationSweep(context.Background(), cfg)
		return err
	}))
	b.Sweeps = append(b.Sweeps, measureSweep("tradeoff_grid", *workers, func(w int) error {
		cfg := experiments.DefaultFig9Config()
		cfg.DeltaIntervals = []float64{0, 0.25, 0.5}
		cfg.DeltaTemps = []float64{0, 5}
		cfg.Iterations = 8
		cfg.MaxIterations = 32
		cfg.Workers = w
		_, err := experiments.Fig9Fig10Tradeoff(context.Background(), cfg)
		return err
	}))

	b.Sweeps = append(b.Sweeps, measureSweep("banks_parallel", *workers, func(w int) error {
		return bankedSweeps(w, 40)
	}))

	b.Micro = append(b.Micro,
		benchfmt.Micro("read_compare_all", benchReadCompareAll(0)),
		benchfmt.Micro("read_compare_all_autorefresh", benchReadCompareAll(0.064)),
	)

	if err := b.WriteFile(*out); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %s\n", *out)
	for _, s := range b.Sweeps {
		fmt.Printf("  %-20s seq %.2fs  par(%d) %.2fs  speedup %.2fx\n",
			s.Name, s.SequentialSec, s.Workers, s.ParallelSec, s.Speedup)
	}
	for _, m := range b.Micro {
		fmt.Printf("  %-30s %.0f ns/op  %d allocs/op\n", m.Name, m.NsPerOp, m.AllocsPerOp)
	}
}

// measureSweep times one run at workers=1 and one at the requested count.
// The sweeps are deterministic, so a single timed run per mode compares the
// same work on both sides. The speedup is always the measured ratio — even
// at workers=1, where both runs take the same inline code path and the ratio
// reports the run-to-run timer noise honestly instead of a pinned 1.0 (the
// num_cpu/gomaxprocs header says whether parallel wins were possible at all).
func measureSweep(name string, workers int, run func(workers int) error) benchfmt.SweepResult {
	timeOne := func(w int) float64 {
		start := time.Now()
		if err := run(w); err != nil {
			log.Fatalf("%s (workers=%d): %v", name, w, err)
		}
		return time.Since(start).Seconds()
	}
	r := benchfmt.SweepResult{
		Name:          name,
		Workers:       workers,
		SequentialSec: timeOne(1),
		ParallelSec:   timeOne(workers),
	}
	if r.ParallelSec > 0 {
		r.Speedup = r.SequentialSec / r.ParallelSec
	}
	return r
}

// bankedSweeps runs rounds full-classification sweeps on one BankStreams
// device sharded across w workers — the intra-chip parallelism row. Fresh
// random patterns defeat the round cache so every sweep classifies in full;
// results are byte-identical at every worker count, only wall clock moves.
func bankedSweeps(w, rounds int) error {
	d, err := dram.NewDevice(dram.Config{
		Geometry:    dram.Geometry{Banks: 8, RowsPerBank: 256, WordsPerRow: 256},
		Vendor:      dram.VendorB(),
		Seed:        7,
		WeakScale:   100,
		BankStreams: true,
	})
	if err != nil {
		return err
	}
	d.SetSweepWorkers(w)
	now := 0.0
	for i := 0; i < rounds; i++ {
		d.WriteAll(patterns.Random(uint64(i)), now)
		now += 2.048
		_ = d.ReadCompareAll(now)
		now += 0.5
	}
	return nil
}

// benchReadCompareAll mirrors internal/dram's BenchmarkReadCompareAll: one
// full write/wait/read profiling pass on a bench-scale chip.
func benchReadCompareAll(autoRef float64) testing.BenchmarkResult {
	d, err := dram.NewDevice(dram.Config{
		Geometry:  dram.Geometry{Banks: 8, RowsPerBank: 256, WordsPerRow: 256},
		Vendor:    dram.VendorB(),
		Seed:      7,
		WeakScale: 30,
	})
	if err != nil {
		log.Fatal(err)
	}
	if autoRef > 0 {
		d.SetAutoRefresh(autoRef)
	}
	ps := []dram.RowData{patterns.Solid1(), patterns.Checkerboard(), patterns.Random(1)}
	now := 0.0
	return testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			d.WriteAll(ps[i%len(ps)], now)
			now += 2.048
			_ = d.ReadCompareAll(now)
			now += 0.5
		}
	})
}
