// Command endtoend regenerates the paper's end-to-end evaluation: Table 1
// (tolerable RBER per ECC strength), Figures 11-12 (profiling time fraction
// and profiling power), and Figure 13 (system performance and DRAM power
// across refresh intervals for brute-force, REAPER, and ideal profiling).
//
// Exit status: 0 on success, 2 on configuration or runtime errors.
//
// Usage:
//
//	endtoend [-part table1|fig11|fig13|all] [-quick] [-cadence paper|longevity] [-workers N]
package main

import (
	"context"
	"flag"
	"log"
	"os"

	"reaper/internal/ecc"
	"reaper/internal/experiments"
	"reaper/internal/parallel"
)

// main delegates to run so the process exits with the uniform status codes.
func main() { os.Exit(run()) }

func run() int {
	part := flag.String("part", "all", "which result to produce: table1, fig11, fig13, all")
	quick := flag.Bool("quick", false, "reduced mix count and simulation length")
	cadence := flag.String("cadence", "paper", "fig13 profiling cadence model: paper | longevity")
	seed := flag.Uint64("seed", 13, "experiment seed")
	workers := flag.Int("workers", parallel.DefaultWorkers(),
		"worker pool size for the fig13 mix simulations (results are identical at any count)")
	flag.Parse()

	if *workers < 1 {
		log.Printf("endtoend: -workers must be >= 1 (got %d)", *workers)
		return 2
	}

	doTable1 := *part == "all" || *part == "table1"
	doFig11 := *part == "all" || *part == "fig11" || *part == "fig12" // one harness covers both
	doFig13 := *part == "all" || *part == "fig13"
	if !doTable1 && !doFig11 && !doFig13 {
		log.Printf("endtoend: unknown part %q; valid parts: table1, fig11, fig12, fig13, all", *part)
		return 2
	}

	if doTable1 {
		rows := experiments.Table1TolerableRBER(ecc.UBERConsumer)
		experiments.Table1Render(rows).Render(os.Stdout)
	}
	if doFig11 {
		rows, err := experiments.Fig11Fig12ProfilingOverhead(experiments.DefaultFig11Config())
		if err != nil {
			log.Println(err)
			return 2
		}
		experiments.Fig11Table(rows).Render(os.Stdout)
	}
	if doFig13 {
		cfg := experiments.DefaultFig13Config()
		cfg.Seed = *seed
		cfg.Workers = *workers
		switch *cadence {
		case "paper":
			cfg.Cadence = experiments.CadencePaperImplied
		case "longevity":
			cfg.Cadence = experiments.CadenceLongevity
		default:
			log.Printf("endtoend: unknown cadence %q; valid cadences: paper, longevity", *cadence)
			return 2
		}
		if *quick {
			cfg.Mixes = 6
			cfg.InstructionsPerCore = 400_000
			cfg.ChipGbs = []int{64}
		}
		cells, err := experiments.Fig13EndToEnd(context.Background(), cfg)
		if err != nil {
			log.Println(err)
			return 2
		}
		experiments.Fig13Table(cells).Render(os.Stdout)
	}
	return 0
}
