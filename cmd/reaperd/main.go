// Command reaperd is the profiling-as-a-service daemon: a long-running
// HTTP/JSON server that accepts declarative test programs (the
// internal/testprog JSON schema), runs them on a bounded deterministic
// scheduler, and serves status, results, and progress events. API.md
// documents the wire protocol; EXPERIMENTS.md "Campaigns as data" walks
// through running the paper's campaigns against it.
//
// Endpoints: POST /v1/programs (submit), GET /v1/programs (list),
// GET /v1/programs/{id} (status), GET /v1/programs/{id}/result,
// POST /v1/programs/{id}/cancel, GET /v1/programs/{id}/events (JSONL),
// GET /healthz, GET /metrics.
//
// SIGINT/SIGTERM trigger a graceful drain: new submissions are rejected
// with 503 while queued and running programs finish, then the process
// exits 0.
//
// Exit status (uniform across the reaper tools, see OBSERVABILITY.md):
// 0 on a clean drain (or -selftest pass), 1 when -selftest detects a
// mismatch (determinism or golden-result violation), 2 on configuration
// errors.
//
// Usage:
//
//	reaperd [-addr host:port] [-max-concurrent N] [-queue-depth N]
//	        [-job-workers N] [-trace-capacity N]
//	        [-metrics-out file.json] [-pprof-addr host:port] [-selftest]
//
// -selftest starts the server on a loopback port, submits a small device
// program twice through the Go client, asserts the two result documents
// are byte-identical and structurally sound, and exits — the make
// serve-quick / CI smoke test.
package main

import (
	"bytes"
	"context"
	"crypto/sha256"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"reaper/client"
	"reaper/internal/checkpoint"
	"reaper/internal/exitcode"
	"reaper/internal/parallel"
	"reaper/internal/reaperd"
	"reaper/internal/telemetry"
)

// selftestProgram is the tiny device program -selftest submits twice.
const selftestProgram = `{
  "version": 1,
  "name": "selftest",
  "seed": 7,
  "fleet": {"bits": 1048576, "weak_scale": 40},
  "stages": [
    {"type": "write_pattern", "pattern": "checker"},
    {"type": "disable_refresh"},
    {"type": "wait", "seconds": 2},
    {"type": "enable_refresh"},
    {"type": "read_compare", "label": "after-2s"},
    {"type": "classify", "target_interval_s": 1.024, "target_temp_c": 45}
  ],
  "output": {"failing_bits": 8, "include_metrics": true}
}`

// main delegates to run so deferred cleanups execute before exit.
func main() { os.Exit(run()) }

func run() int {
	addr := flag.String("addr", "127.0.0.1:8377", "listen address")
	maxConcurrent := flag.Int("max-concurrent", 2, "programs running at once")
	queueDepth := flag.Int("queue-depth", 16, "accepted programs that may wait for the executor")
	jobWorkers := flag.Int("job-workers", parallel.DefaultWorkers(),
		"per-program worker pool size (results are identical at any count)")
	traceCap := flag.Int("trace-capacity", 0,
		"progress-event ring size per program (0 = default)")
	metricsOut := flag.String("metrics-out", "", "write the final metrics snapshot JSON here on exit")
	pprofAddr := flag.String("pprof-addr", "", "serve pprof + live metrics on this address")
	selftest := flag.Bool("selftest", false, "run the submit-twice determinism smoke test and exit")
	flag.Parse()

	if *maxConcurrent < 1 || *queueDepth < 1 || *jobWorkers < 1 {
		log.Printf("reaperd: -max-concurrent, -queue-depth and -job-workers must be >= 1")
		return exitcode.ConfigError
	}

	reg := telemetry.New()
	cfg := reaperd.Config{
		MaxConcurrent: *maxConcurrent,
		QueueDepth:    *queueDepth,
		JobWorkers:    *jobWorkers,
		TraceCapacity: *traceCap,
		Telemetry:     reg,
	}

	if *pprofAddr != "" {
		dbg, err := telemetry.StartServer(*pprofAddr, reg)
		if err != nil {
			log.Printf("reaperd: %v", err)
			return exitcode.ConfigError
		}
		defer dbg.Close()
		log.Printf("reaperd: pprof and live metrics on http://%s", dbg.Addr())
	}

	// SIGINT/SIGTERM cancel ctx, which turns into a graceful drain inside
	// Serve: intake flips to 503, queued and running programs finish.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if *selftest {
		return runSelftest(ctx, cfg)
	}

	s := reaperd.New(cfg)
	if err := s.Start(ctx, *addr); err != nil {
		log.Printf("reaperd: %v", err)
		return exitcode.ConfigError
	}
	log.Printf("reaperd: serving on http://%s (max-concurrent %d, queue %d, job-workers %d)",
		s.Addr(), *maxConcurrent, *queueDepth, *jobWorkers)

	err := s.Serve(ctx)
	_ = s.Close()
	if werr := writeMetrics(*metricsOut, reg); werr != nil {
		log.Printf("reaperd: %v", werr)
		return exitcode.ConfigError
	}
	if err != nil {
		log.Printf("reaperd: scheduler: %v", err)
		return exitcode.ConfigError
	}
	log.Printf("reaperd: drained, exiting")
	return exitcode.OK
}

// writeMetrics writes the registry snapshot atomically when a path is set.
func writeMetrics(path string, reg *telemetry.Registry) error {
	if path == "" {
		return nil
	}
	var buf bytes.Buffer
	if err := reg.Snapshot().WriteJSON(&buf); err != nil {
		return err
	}
	return checkpoint.WriteFileAtomic(path, buf.Bytes(), 0o644)
}

// runSelftest hosts the server on a loopback port and runs the
// client-side smoke check against it: the scheduler occupies this
// goroutine's pool slot while the check drives the HTTP API, and stopping
// the scheduler context ends both.
func runSelftest(ctx context.Context, cfg reaperd.Config) int {
	s := reaperd.New(cfg)
	if err := s.Start(ctx, "127.0.0.1:0"); err != nil {
		log.Printf("reaperd: selftest: %v", err)
		return exitcode.ConfigError
	}
	defer s.Close()

	serveCtx, stopServe := context.WithCancel(ctx)
	defer stopServe()
	var checkErr error
	_ = parallel.Do(ctx, 2,
		func(context.Context) error { return s.Serve(serveCtx) },
		func(ctx context.Context) error {
			defer stopServe()
			checkErr = selftestCheck(ctx, "http://"+s.Addr())
			return nil
		},
	)
	if checkErr != nil {
		log.Printf("reaperd: selftest FAILED: %v", checkErr)
		return exitcode.Violated
	}
	log.Printf("reaperd: selftest ok")
	return exitcode.OK
}

// selftestCheck is the golden check: submit the self-test program twice,
// require both runs to finish, produce structurally sound results, and
// return byte-identical documents.
func selftestCheck(ctx context.Context, base string) error {
	c := client.New(base)

	first, err := runOnce(ctx, c)
	if err != nil {
		return err
	}
	second, err := runOnce(ctx, c)
	if err != nil {
		return err
	}
	if !bytes.Equal(first, second) {
		return fmt.Errorf("determinism violated: two submissions of the same program returned different result bytes")
	}
	log.Printf("reaperd: selftest result digest sha256:%x", sha256.Sum256(first))
	return nil
}

// runOnce submits the self-test program, waits for it, and validates the
// result document's invariants before returning its bytes.
func runOnce(ctx context.Context, c *client.Client) ([]byte, error) {
	st, err := c.Submit(ctx, []byte(selftestProgram))
	if err != nil {
		return nil, err
	}
	fin, err := c.Wait(ctx, st.ID, 2*time.Millisecond)
	if err != nil {
		return nil, err
	}
	if fin.State != reaperd.StateDone {
		return nil, fmt.Errorf("program %s finished %s: %s", fin.ID, fin.State, fin.Error)
	}
	if fin.Done != fin.Total || fin.Total != 6 {
		return nil, fmt.Errorf("program %s progress %d/%d, want 6/6", fin.ID, fin.Done, fin.Total)
	}
	res, err := c.Result(ctx, fin.ID)
	if err != nil {
		return nil, err
	}
	if res.Kind != "device" || len(res.Chips) != 1 || len(res.Chips[0].Stages) != 6 {
		return nil, fmt.Errorf("program %s: malformed result shape", fin.ID)
	}
	cl := res.Chips[0].Stages[5].Classify
	if cl == nil || cl.Found != res.Chips[0].UniqueFailures {
		return nil, fmt.Errorf("program %s: classify stage inconsistent with unique failures", fin.ID)
	}
	if res.Metrics == nil {
		return nil, fmt.Errorf("program %s: include_metrics set but no metrics snapshot", fin.ID)
	}
	events, err := c.Events(ctx, fin.ID)
	if err != nil {
		return nil, err
	}
	if len(events) < 3 {
		return nil, fmt.Errorf("program %s: expected accepted/progress/finished events, got %d", fin.ID, len(events))
	}
	return c.ResultBytes(ctx, fin.ID)
}
