// Command reaper profiles a simulated LPDDR4 chip for retention failures
// with either brute-force profiling (the paper's Algorithm 1) or reach
// profiling (the paper's contribution), reporting coverage, false positive
// rate, runtime, and the implied profile longevity under SECDED ECC.
//
// Exit status (uniform across the reaper tools, see OBSERVABILITY.md):
// 0 on success, 2 on configuration or runtime errors.
//
// Usage:
//
//	reaper [-capacity-mbit N] [-vendor A|B|C] [-seed S]
//	       [-target ms] [-reach-interval ms] [-reach-temp C]
//	       [-iterations N] [-chamber] [-workers N]
//	       [-metrics-out file.json] [-trace-out file.jsonl]
//	       [-pprof-addr host:port] [-cpuprofile file] [-heapprofile file]
//
// -metrics-out and -trace-out opt the run into the deterministic telemetry
// layer (see OBSERVABILITY.md); -pprof-addr, -cpuprofile, and -heapprofile
// observe the host process, not the simulation.
package main

import (
	"bytes"
	"flag"
	"fmt"
	"log"
	"os"

	"reaper"
	"reaper/internal/checkpoint"
	"reaper/internal/ecc"
	"reaper/internal/exitcode"
	"reaper/internal/longevity"
	"reaper/internal/parallel"
	"reaper/internal/telemetry"
)

// main delegates to run so deferred cleanups (CPU profile stop, pprof
// server shutdown) execute before the process exits with a status code.
func main() { os.Exit(run()) }

func run() int {
	capacityMbit := flag.Int64("capacity-mbit", 256, "chip capacity in Mbit")
	vendorName := flag.String("vendor", "B", "vendor profile: A, B or C")
	seed := flag.Uint64("seed", 1, "chip seed (reproducible experiments)")
	targetMs := flag.Float64("target", 1024, "target refresh interval, ms")
	reachMs := flag.Float64("reach-interval", 500, "reach delta interval, ms (0 = brute force)")
	reachTemp := flag.Float64("reach-temp", 0, "reach delta temperature, °C")
	iterations := flag.Int("iterations", 16, "profiling iterations")
	chamber := flag.Bool("chamber", false, "simulate the PID thermal chamber")
	chips := flag.Int("chips", 1, "number of chips (>1 profiles a multi-chip module)")
	workers := flag.Int("workers", parallel.DefaultWorkers(),
		"worker pool size for multi-chip module passes (results are identical at any count)")
	metricsOut := flag.String("metrics-out", "", "write the telemetry metrics snapshot (JSON) to this file")
	traceOut := flag.String("trace-out", "", "write the profiling trace (JSONL) to this file")
	pprofAddr := flag.String("pprof-addr", "", "serve net/http/pprof and /metrics on this address (e.g. localhost:6060)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile of the host process to this file")
	heapprofile := flag.String("heapprofile", "", "write a heap profile of the host process to this file")
	flag.Parse()

	if *workers < 1 {
		log.Printf("reaper: -workers must be >= 1 (got %d)", *workers)
		return exitcode.ConfigError
	}
	if *chips < 1 {
		log.Printf("reaper: -chips must be >= 1 (got %d)", *chips)
		return exitcode.ConfigError
	}

	var vendor reaper.VendorParams
	switch *vendorName {
	case "A":
		vendor = reaper.VendorA()
	case "B":
		vendor = reaper.VendorB()
	case "C":
		vendor = reaper.VendorC()
	default:
		log.Printf("reaper: unknown vendor %q; valid vendors: A, B, C", *vendorName)
		return exitcode.ConfigError
	}

	var reg *telemetry.Registry
	var tracer *telemetry.Tracer
	if *metricsOut != "" || *traceOut != "" || *pprofAddr != "" {
		reg = telemetry.New()
		tracer = telemetry.NewTracer(telemetry.DefaultTraceCapacity)
	}
	if *pprofAddr != "" {
		srv, err := telemetry.StartServer(*pprofAddr, reg)
		if err != nil {
			log.Println(err)
			return exitcode.ConfigError
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "reaper: pprof and /metrics on http://%s\n", srv.Addr())
	}
	if *cpuprofile != "" {
		stop, err := telemetry.StartCPUProfile(*cpuprofile)
		if err != nil {
			log.Println(err)
			return exitcode.ConfigError
		}
		defer func() {
			if err := stop(); err != nil {
				log.Println(err)
			}
		}()
	}

	cfg := reaper.ChipConfig{
		CapacityBits:       *capacityMbit << 20,
		Vendor:             vendor,
		Seed:               *seed,
		WithThermalChamber: *chamber,
	}
	var st reaper.TestStation
	var truthAt func(interval, tempC float64) (*reaper.FailureSet, error)
	if *chips > 1 {
		mod, err := reaper.NewModule(*chips, cfg)
		if err != nil {
			log.Println(err)
			return exitcode.ConfigError
		}
		mod.SetWorkers(*workers)
		mod.SetTelemetry(reg)
		fmt.Printf("module: %d chips x %v, vendor %s\n",
			mod.Chips(), mod.Device(0).Geometry(), vendor.Name)
		st = mod
		truthAt = mod.Truth
	} else {
		station, err := reaper.NewStation(cfg)
		if err != nil {
			log.Println(err)
			return exitcode.ConfigError
		}
		fmt.Printf("chip: %v, vendor %s, %d modelled weak cells\n",
			station.Device().Geometry(), vendor.Name, station.Device().WeakCellCount())
		st = station
		truthAt = func(interval, tempC float64) (*reaper.FailureSet, error) {
			return reaper.Truth(station, interval, tempC), nil
		}
	}

	target := *targetMs / 1000
	reach := reaper.ReachConditions{
		DeltaInterval: *reachMs / 1000,
		DeltaTempC:    *reachTemp,
	}
	mode := "reach profiling"
	if reach.DeltaInterval == 0 && reach.DeltaTempC == 0 {
		mode = "brute-force profiling"
	}
	fmt.Printf("%s: target %.0fms @ %.0f°C, profiling at %.0fms @ %.0f°C, %d iterations\n",
		mode, target*1000, st.Ambient(),
		(target+reach.DeltaInterval)*1000, st.Ambient()+reach.DeltaTempC, *iterations)

	res, err := reaper.Profile(st, target, reach, reaper.Options{
		Iterations:              *iterations,
		FreshRandomPerIteration: true,
		Seed:                    *seed,
		Telemetry:               reg,
		Tracer:                  tracer,
	})
	if err != nil {
		log.Println(err)
		return exitcode.ConfigError
	}
	truth, err := truthAt(target, reaper.RefTempC)
	if err != nil {
		log.Println(err)
		return exitcode.ConfigError
	}
	cov := reaper.Coverage(res.Failures, truth)
	fpr := reaper.FalsePositiveRate(res.Failures, truth)
	fmt.Printf("found %d failing cells (ground truth %d): coverage %.4f, FPR %.3f\n",
		res.Failures.Len(), truth.Len(), cov, fpr)
	fmt.Printf("profiling runtime: %.1f simulated seconds (%.1f%% waits, %.1f%% data passes)\n",
		res.RuntimeSeconds(),
		res.Stats.WaitSeconds/res.RuntimeSeconds()*100,
		(res.Stats.WriteSeconds+res.Stats.ReadSeconds)/res.RuntimeSeconds()*100)

	// Profile longevity under SECDED at the consumer UBER target,
	// projected onto a production-scale 2GB module (the simulated chip is
	// a scale model; Equation 7 is capacity-invariant at full coverage
	// but the coverage feasibility threshold is not).
	m := longevity.Model{
		Code:       ecc.SECDED(),
		TargetUBER: ecc.UBERConsumer,
		Bytes:      2 << 30,
		Vendor:     vendor,
		TempC:      reaper.RefTempC,
	}
	if d, err := m.Longevity(target, cov); err != nil {
		fmt.Printf("projected 2GB-module profile longevity: %v\n", err)
		fmt.Println("hint: raise coverage with a larger -reach-interval, -reach-temp, or -iterations")
	} else {
		fmt.Printf("projected 2GB-module profile longevity (SECDED, UBER 1e-15): %.1f hours before reprofiling\n", d.Hours())
	}

	if *metricsOut != "" {
		if err := writeMetrics(*metricsOut, reg); err != nil {
			log.Println(err)
			return exitcode.ConfigError
		}
	}
	if *traceOut != "" {
		if err := writeTrace(*traceOut, tracer); err != nil {
			log.Println(err)
			return exitcode.ConfigError
		}
	}
	if *heapprofile != "" {
		if err := telemetry.WriteHeapProfile(*heapprofile); err != nil {
			log.Println(err)
			return exitcode.ConfigError
		}
	}
	return exitcode.OK
}

// writeMetrics serializes the registry snapshot to path atomically, so a
// crash mid-write never leaves a truncated artifact behind.
func writeMetrics(path string, reg *telemetry.Registry) error {
	var buf bytes.Buffer
	if err := reg.Snapshot().WriteJSON(&buf); err != nil {
		return err
	}
	return checkpoint.WriteFileAtomic(path, buf.Bytes(), 0o644)
}

// writeTrace serializes the tracer's events to path as JSONL atomically,
// stamped with the profiler source.
func writeTrace(path string, tracer *telemetry.Tracer) error {
	var buf bytes.Buffer
	err := telemetry.WriteJSONL(&buf, telemetry.Merge(telemetry.Trace{Source: "profiler", Events: tracer.Events()}))
	if err != nil {
		return err
	}
	return checkpoint.WriteFileAtomic(path, buf.Bytes(), 0o644)
}
