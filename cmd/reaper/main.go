// Command reaper profiles a simulated LPDDR4 chip for retention failures
// with either brute-force profiling (the paper's Algorithm 1) or reach
// profiling (the paper's contribution), reporting coverage, false positive
// rate, runtime, and the implied profile longevity under SECDED ECC.
//
// Usage:
//
//	reaper [-capacity-mbit N] [-vendor A|B|C] [-seed S]
//	       [-target ms] [-reach-interval ms] [-reach-temp C]
//	       [-iterations N] [-chamber] [-workers N]
package main

import (
	"flag"
	"fmt"
	"log"

	"reaper"
	"reaper/internal/ecc"
	"reaper/internal/longevity"
	"reaper/internal/parallel"
)

func main() {
	capacityMbit := flag.Int64("capacity-mbit", 256, "chip capacity in Mbit")
	vendorName := flag.String("vendor", "B", "vendor profile: A, B or C")
	seed := flag.Uint64("seed", 1, "chip seed (reproducible experiments)")
	targetMs := flag.Float64("target", 1024, "target refresh interval, ms")
	reachMs := flag.Float64("reach-interval", 500, "reach delta interval, ms (0 = brute force)")
	reachTemp := flag.Float64("reach-temp", 0, "reach delta temperature, °C")
	iterations := flag.Int("iterations", 16, "profiling iterations")
	chamber := flag.Bool("chamber", false, "simulate the PID thermal chamber")
	chips := flag.Int("chips", 1, "number of chips (>1 profiles a multi-chip module)")
	workers := flag.Int("workers", parallel.DefaultWorkers(),
		"worker pool size for multi-chip module passes (results are identical at any count)")
	flag.Parse()

	if *workers < 1 {
		log.Fatalf("reaper: -workers must be >= 1 (got %d)", *workers)
	}
	if *chips < 1 {
		log.Fatalf("reaper: -chips must be >= 1 (got %d)", *chips)
	}

	var vendor reaper.VendorParams
	switch *vendorName {
	case "A":
		vendor = reaper.VendorA()
	case "B":
		vendor = reaper.VendorB()
	case "C":
		vendor = reaper.VendorC()
	default:
		log.Fatalf("unknown vendor %q", *vendorName)
	}

	cfg := reaper.ChipConfig{
		CapacityBits:       *capacityMbit << 20,
		Vendor:             vendor,
		Seed:               *seed,
		WithThermalChamber: *chamber,
	}
	var st reaper.TestStation
	var truthAt func(interval, tempC float64) *reaper.FailureSet
	if *chips > 1 {
		mod, err := reaper.NewModule(*chips, cfg)
		if err != nil {
			log.Fatal(err)
		}
		mod.SetWorkers(*workers)
		fmt.Printf("module: %d chips x %v, vendor %s\n",
			mod.Chips(), mod.Device(0).Geometry(), vendor.Name)
		st = mod
		truthAt = func(interval, tempC float64) *reaper.FailureSet {
			set, err := mod.Truth(interval, tempC)
			if err != nil {
				log.Fatal(err)
			}
			return set
		}
	} else {
		station, err := reaper.NewStation(cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("chip: %v, vendor %s, %d modelled weak cells\n",
			station.Device().Geometry(), vendor.Name, station.Device().WeakCellCount())
		st = station
		truthAt = func(interval, tempC float64) *reaper.FailureSet {
			return reaper.Truth(station, interval, tempC)
		}
	}

	target := *targetMs / 1000
	reach := reaper.ReachConditions{
		DeltaInterval: *reachMs / 1000,
		DeltaTempC:    *reachTemp,
	}
	mode := "reach profiling"
	if reach.DeltaInterval == 0 && reach.DeltaTempC == 0 {
		mode = "brute-force profiling"
	}
	fmt.Printf("%s: target %.0fms @ %.0f°C, profiling at %.0fms @ %.0f°C, %d iterations\n",
		mode, target*1000, st.Ambient(),
		(target+reach.DeltaInterval)*1000, st.Ambient()+reach.DeltaTempC, *iterations)

	res, err := reaper.Profile(st, target, reach,
		reaper.Options{Iterations: *iterations, FreshRandomPerIteration: true, Seed: *seed})
	if err != nil {
		log.Fatal(err)
	}
	truth := truthAt(target, reaper.RefTempC)
	cov := reaper.Coverage(res.Failures, truth)
	fpr := reaper.FalsePositiveRate(res.Failures, truth)
	fmt.Printf("found %d failing cells (ground truth %d): coverage %.4f, FPR %.3f\n",
		res.Failures.Len(), truth.Len(), cov, fpr)
	fmt.Printf("profiling runtime: %.1f simulated seconds (%.1f%% waits, %.1f%% data passes)\n",
		res.RuntimeSeconds(),
		res.Stats.WaitSeconds/res.RuntimeSeconds()*100,
		(res.Stats.WriteSeconds+res.Stats.ReadSeconds)/res.RuntimeSeconds()*100)

	// Profile longevity under SECDED at the consumer UBER target,
	// projected onto a production-scale 2GB module (the simulated chip is
	// a scale model; Equation 7 is capacity-invariant at full coverage
	// but the coverage feasibility threshold is not).
	m := longevity.Model{
		Code:       ecc.SECDED(),
		TargetUBER: ecc.UBERConsumer,
		Bytes:      2 << 30,
		Vendor:     vendor,
		TempC:      reaper.RefTempC,
	}
	if d, err := m.Longevity(target, cov); err != nil {
		fmt.Printf("projected 2GB-module profile longevity: %v\n", err)
		fmt.Println("hint: raise coverage with a larger -reach-interval, -reach-temp, or -iterations")
	} else {
		fmt.Printf("projected 2GB-module profile longevity (SECDED, UBER 1e-15): %.1f hours before reprofiling\n", d.Hours())
	}
}
