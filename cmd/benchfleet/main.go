// Command benchfleet measures fleet-scale memory behavior — the numbers the
// lazy shard executor exists to move — and writes a machine-readable baseline
// to BENCH_fleet.json (same schema as BENCH_device.json; see
// internal/benchfmt). Two kinds of rows:
//
//   - fleet_dense_resident: bytes of heap resident per materialized chip,
//     measured by holding a cohort of template-built devices live and reading
//     the GC-settled heap delta (runtime.ReadMemStats). This is the per-chip
//     cost a dense fleet pays for every chip at once — multiply by a million
//     and dense execution cannot run on this host.
//   - fleet_lazy_sweep@{1k,100k,1m}: a retention sweep (write, wait, full
//     read-compare classification, evict) over N seed-derived chips in
//     consecutive shards of -shard chips. NsPerOp is ns per chip (chips/sec =
//     1e9 / NsPerOp); BytesPerOp is the peak GC-settled HeapAlloc observed at
//     shard boundaries over the whole run. The lazy invariant the benchdiff
//     gate watches: peak heap at 1M chips stays within noise of peak heap at
//     1k chips, because only the active shard is ever dense.
//
// Usage:
//
//	benchfleet [-out BENCH_fleet.json] [-quick] [-parity] [-shard N] [-workers N]
//
// -quick replaces the 100k/1M scaling rows with a 10k row so CI can smoke the
// fleet path in seconds. -parity runs no benchmarks at all: it sweeps one
// small population through the legacy, sharded, and dense executors at 1 and
// default workers and fails (exit 1) unless every report is byte-identical —
// `make fleet-quick` runs this as part of `make check`.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"time"

	"reaper/internal/benchfmt"
	"reaper/internal/dram"
	"reaper/internal/experiments"
	"reaper/internal/parallel"
	"reaper/internal/patterns"
)

// seedMicro pins the fleet numbers at this PR's base commit, before lazy
// shard execution: construction cost and resident bytes per chip are
// unchanged (the dense row measures the same device), but the sweep held
// every chip's device for the whole run, so its peak heap was fleet size
// times the dense per-chip row — ~171 MB at 1k chips, and an extrapolated
// ~171 GB at 1M chips, which this host cannot hold at all.
var seedMicro = []benchfmt.MicroResult{
	{Name: "fleet_dense_resident@1mbit", NsPerOp: 650_000, AllocsPerOp: 563, BytesPerOp: 170_782},
	{Name: "fleet_lazy_sweep@1k", NsPerOp: 650_000, AllocsPerOp: 585, BytesPerOp: 170_782_000},
}

func main() {
	out := flag.String("out", "BENCH_fleet.json", "output path")
	quick := flag.Bool("quick", false, "scale down to 1k/10k chips (CI smoke)")
	parity := flag.Bool("parity", false, "run the lazy-vs-dense byte-identity check instead of benchmarks")
	shard := flag.Int("shard", 256, "chips holding dense state at once in the lazy rows")
	workers := flag.Int("workers", parallel.DefaultWorkers(), "worker pool size for the lazy rows")
	flag.Parse()
	if *shard < 1 {
		log.Fatalf("benchfleet: -shard must be >= 1 (got %d)", *shard)
	}
	if *workers < 1 {
		log.Fatalf("benchfleet: -workers must be >= 1 (got %d)", *workers)
	}
	if *parity {
		os.Exit(runParity())
	}

	b := benchfmt.NewBaseline()
	b.GeneratedAt = time.Now().UTC().Format(time.RFC3339)
	b.SeedMicro = seedMicro

	b.Micro = append(b.Micro, denseResidentRow(1024))

	scales := []struct {
		label string
		chips int
	}{{"1k", 1_000}, {"100k", 100_000}, {"1m", 1_000_000}}
	if *quick {
		scales = scales[:1]
		scales = append(scales, struct {
			label string
			chips int
		}{"10k", 10_000})
	}
	for _, sc := range scales {
		row, chipsPerSec := lazySweepRow(sc.label, sc.chips, *shard, *workers)
		b.Micro = append(b.Micro, row)
		fmt.Fprintf(os.Stderr, "benchfleet: %s: %.0f chips/sec, peak heap %.1f MiB (shard %d, workers %d)\n",
			sc.label, chipsPerSec, float64(row.BytesPerOp)/(1<<20), *shard, *workers)
	}

	if err := b.WriteFile(*out); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %s\n", *out)
	for _, m := range b.Micro {
		fmt.Printf("  %-28s %12.0f ns/op  %6d allocs/op  %12d B/op\n",
			m.Name, m.NsPerOp, m.AllocsPerOp, m.BytesPerOp)
	}
}

// fleetChipConfig is the benchmark chip: the smallest admissible geometry
// (1 Mbit) at soak density, so the 1M-chip row finishes in minutes while the
// per-chip weak population stays non-trivial.
func fleetChipConfig(seed uint64) dram.Config {
	return dram.Config{
		Geometry:  dram.GeometryForBits(1 << 20),
		Vendor:    dram.VendorB(),
		Seed:      seed,
		WeakScale: 20,
	}
}

// fleetTemplate pre-draws the shared vendor tuple table every chip in the
// fleet samples from; built once, outside all timers, exactly as the sweep
// harnesses do.
func fleetTemplate() *dram.PopulationTemplate {
	tpl, err := dram.NewPopulationTemplate(fleetChipConfig(0), 1<<14, 99)
	if err != nil {
		log.Fatal(err)
	}
	return tpl
}

// heapNow returns the GC-settled live-heap size. Forcing a collection before
// reading makes the number "bytes resident", not "bytes since last GC".
func heapNow() uint64 {
	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return ms.HeapAlloc
}

// denseResidentRow materializes a cohort of chips and holds every one of
// them live — the pre-lazy fleet shape — and reports per-chip construction
// time, allocations, and resident heap bytes.
func denseResidentRow(cohort int) benchfmt.MicroResult {
	tpl := fleetTemplate()
	before := heapNow()
	var msBefore runtime.MemStats
	runtime.ReadMemStats(&msBefore)

	start := time.Now()
	devs := make([]*dram.Device, cohort)
	for i := range devs {
		ref, err := dram.NewChipRef(fleetChipConfig(uint64(i + 1)))
		if err != nil {
			log.Fatal(err)
		}
		if devs[i], err = ref.MaterializeFromTemplate(tpl); err != nil {
			log.Fatal(err)
		}
	}
	elapsed := time.Since(start)

	after := heapNow()
	var msAfter runtime.MemStats
	runtime.ReadMemStats(&msAfter)
	resident := int64(0)
	if after > before {
		resident = int64(after-before) / int64(cohort)
	}
	row := benchfmt.MicroResult{
		Name:        "fleet_dense_resident@1mbit",
		NsPerOp:     float64(elapsed.Nanoseconds()) / float64(cohort),
		AllocsPerOp: int64(msAfter.Mallocs-msBefore.Mallocs) / int64(cohort),
		BytesPerOp:  resident,
	}
	runtime.KeepAlive(devs)
	return row
}

// lazySweepRow runs the shard spin-up/sweep/evict loop over chips seed-derived
// chips: each chip is materialized from its ChipRef, written, classified once
// at an extended interval, folded into a scalar, and dropped. Heap is sampled
// (GC-settled) at shard boundaries; the peak becomes BytesPerOp.
func lazySweepRow(label string, chips, shard, workers int) (benchfmt.MicroResult, float64) {
	tpl := fleetTemplate()
	pat := patterns.Checkerboard()
	ctx := context.Background()
	if workers > shard {
		workers = shard
	}

	// Sampling at every boundary would spend more time in forced GCs than in
	// the sweep at 1M/256 = ~4k shards; ~64 evenly spaced samples (always
	// including the first and last shard) bound the peak just as well.
	numShards := (chips + shard - 1) / shard
	stride := numShards / 64
	if stride < 1 {
		stride = 1
	}

	var peak uint64
	var failSink uint64
	var msBefore runtime.MemStats
	runtime.ReadMemStats(&msBefore)
	start := time.Now()
	for lo, si := 0, 0; lo < chips; lo, si = lo+shard, si+1 {
		hi := lo + shard
		if hi > chips {
			hi = chips
		}
		fails, err := parallel.Map(ctx, hi-lo, workers, func(_ context.Context, k int) (uint64, error) {
			ref, err := dram.NewChipRef(fleetChipConfig(uint64(lo + k + 1)))
			if err != nil {
				return 0, err
			}
			dev, err := ref.MaterializeFromTemplate(tpl)
			if err != nil {
				return 0, err
			}
			dev.WriteAll(pat, 0)
			return uint64(len(dev.ReadCompareAll(2.048))), nil
		})
		if err != nil {
			log.Fatal(err)
		}
		for _, f := range fails {
			failSink += f
		}
		if si%stride == 0 || hi == chips {
			if h := heapNow(); h > peak {
				peak = h
			}
		}
	}
	elapsed := time.Since(start)
	var msAfter runtime.MemStats
	runtime.ReadMemStats(&msAfter)

	nsPerChip := float64(elapsed.Nanoseconds()) / float64(chips)
	row := benchfmt.MicroResult{
		Name:        "fleet_lazy_sweep@" + label,
		NsPerOp:     nsPerChip,
		AllocsPerOp: int64(msAfter.Mallocs-msBefore.Mallocs) / int64(chips),
		BytesPerOp:  int64(peak),
	}
	_ = failSink
	return row, 1e9 / nsPerChip
}

// runParity sweeps one small population through every executor the fleet
// refactor added — legacy single-batch, sharded (sizes 1 and 3), and dense —
// at workers 1 and the host default, and byte-compares the JSON reports.
// Any divergence is a correctness bug in lazy execution, not noise.
func runParity() int {
	base := experiments.DefaultPopulationConfig()
	base.ChipsPerVendor = 2
	base.ChipBits = 4 << 20
	base.Iterations = 4
	base.Workers = 1

	ctx := context.Background()
	want, err := report(ctx, base)
	if err != nil {
		log.Println(err)
		return 2
	}

	mismatches := 0
	for _, v := range []struct {
		name    string
		mutate  func(*experiments.PopulationConfig)
		workers int
	}{
		{"legacy@default-workers", func(*experiments.PopulationConfig) {}, 0},
		{"shard1@w1", func(c *experiments.PopulationConfig) { c.ShardSize = 1 }, 1},
		{"shard3@default-workers", func(c *experiments.PopulationConfig) { c.ShardSize = 3 }, 0},
		{"dense@w1", func(c *experiments.PopulationConfig) { c.Dense = true }, 1},
		{"dense@default-workers", func(c *experiments.PopulationConfig) { c.Dense = true }, 0},
	} {
		cfg := base
		cfg.Workers = v.workers
		v.mutate(&cfg)
		got, err := report(ctx, cfg)
		if err != nil {
			log.Println(err)
			return 2
		}
		if !bytes.Equal(got, want) {
			fmt.Fprintf(os.Stderr, "benchfleet: PARITY FAILURE: %s diverged from the workers=1 legacy sweep\n", v.name)
			mismatches++
			continue
		}
		fmt.Fprintf(os.Stderr, "benchfleet: parity ok: %s\n", v.name)
	}
	if mismatches > 0 {
		return 1
	}
	fmt.Println("benchfleet: lazy, sharded, and dense executors are byte-identical")
	return 0
}

// report renders a sweep's results as canonical JSON for byte comparison.
func report(ctx context.Context, cfg experiments.PopulationConfig) ([]byte, error) {
	res, err := experiments.PopulationSweep(ctx, cfg)
	if err != nil {
		return nil, err
	}
	return json.MarshalIndent(res, "", "  ")
}
