// Command benchdiff compares a freshly measured benchmark baseline against a
// committed BENCH_*.json and fails on named-micro regressions: for every
// microbenchmark name present in both files, the fresh ns/op may not exceed
// the committed ns/op by more than -max-regress (a fraction; default 0.25).
// Rows only one side has are reported but never fail the run, so adding or
// retiring micros does not break the gate.
//
// Usage:
//
//	benchdiff -baseline BENCH_device.json -fresh /tmp/fresh.json [-max-regress 0.25]
//
// Exit status: 0 when every shared micro is within bounds, 1 on any
// regression beyond the threshold, 2 on usage or parse errors. Intended for
// `make benchdiff` and the non-gating CI step next to the bench smoke —
// timing on shared runners is noisy, so treat failures as a prompt to
// re-measure, not as ground truth.
package main

import (
	"flag"
	"fmt"
	"os"

	"reaper/internal/benchfmt"
)

func main() {
	baseline := flag.String("baseline", "BENCH_device.json", "committed baseline JSON")
	fresh := flag.String("fresh", "", "freshly measured baseline JSON (required)")
	maxRegress := flag.Float64("max-regress", 0.25, "max allowed ns/op regression as a fraction of the committed value")
	maxBytesRegress := flag.Float64("max-bytes-regress", 0.25, "max allowed bytes/op regression as a fraction of the committed value; compared only when both rows record bytes (memory rows like BENCH_fleet.json's bytes-per-chip)")
	flag.Parse()
	if *fresh == "" {
		fmt.Fprintln(os.Stderr, "benchdiff: -fresh is required")
		flag.Usage()
		os.Exit(2)
	}

	base, err := benchfmt.ReadFile(*baseline)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
		os.Exit(2)
	}
	cur, err := benchfmt.ReadFile(*fresh)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
		os.Exit(2)
	}
	if base.NumCPU != cur.NumCPU || base.GOARCH != cur.GOARCH {
		fmt.Printf("note: machine shape differs (baseline %d-cpu/%s, fresh %d-cpu/%s); ratios may not be meaningful\n",
			base.NumCPU, base.GOARCH, cur.NumCPU, cur.GOARCH)
	}

	committed := make(map[string]benchfmt.MicroResult, len(base.Micro))
	for _, m := range base.Micro {
		committed[m.Name] = m
	}

	regressions := 0
	seen := make(map[string]bool, len(cur.Micro))
	for _, m := range cur.Micro {
		seen[m.Name] = true
		want, ok := committed[m.Name]
		if !ok {
			fmt.Printf("  new    %-36s %12.0f ns/op (no committed row)\n", m.Name, m.NsPerOp)
			continue
		}
		ratio := 0.0
		if want.NsPerOp > 0 {
			ratio = m.NsPerOp/want.NsPerOp - 1
		}
		status := "ok"
		if ratio > *maxRegress {
			status = "REGRESS"
			regressions++
		}
		fmt.Printf("  %-7s%-36s %12.0f -> %12.0f ns/op  %+6.1f%%\n",
			status, m.Name, want.NsPerOp, m.NsPerOp, 100*ratio)
		// Memory rows: fleet-scale baselines record bytes/op (bytes resident
		// per chip); a growth there means lazy execution stopped paying off.
		if want.BytesPerOp > 0 && m.BytesPerOp > 0 {
			bratio := float64(m.BytesPerOp)/float64(want.BytesPerOp) - 1
			bstatus := "ok"
			if bratio > *maxBytesRegress {
				bstatus = "REGRESS"
				regressions++
			}
			fmt.Printf("  %-7s%-36s %12d -> %12d B/op   %+6.1f%%\n",
				bstatus, m.Name, want.BytesPerOp, m.BytesPerOp, 100*bratio)
		}
	}
	for _, m := range base.Micro {
		if !seen[m.Name] {
			fmt.Printf("  gone   %-36s (committed row not measured)\n", m.Name)
		}
	}

	if regressions > 0 {
		fmt.Printf("benchdiff: %d micro(s) regressed more than %.0f%% vs %s\n",
			regressions, 100**maxRegress, *baseline)
		os.Exit(1)
	}
	fmt.Printf("benchdiff: all shared micros within %.0f%% of %s\n", 100**maxRegress, *baseline)
}
